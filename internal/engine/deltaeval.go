package engine

// deltaeval.go is the delta-driven evaluation mode (WithDeltaEval): the
// per-instant cost is made proportional to the window *delta* instead
// of the window. Between consecutive instants the rolling snapshot
// reports which graph elements entered, exited, or changed
// (graphstore.Delta); the engine then
//
//   - removes exactly the previously maintained matches that touch an
//     exited or updated element, found through a provenance index
//     (element → matches), and
//   - finds the new matches by running one anchored pattern search per
//     (pattern position, delta element) pair (eval.SeededMatcher),
//
// maintaining each query's result bag — or, for decomposable
// aggregations, its groups — in place. ON ENTERING / ON EXITING emit
// the maintained Δ⁺/Δ⁻ directly, eliminating the BagDifference over
// two full result tables; SNAPSHOT materializes from the maintained
// bag.
//
// Queries outside the maintainable fragment (see eval.CompileDelta)
// fall back per-query to the full evaluator at registration; a query
// can also bail at runtime (eval.ErrDeltaUnsupported, e.g. a float
// reaching sum()), in which case the engine rebuilds the previous
// instant's full result so the classic diff path continues exactly.
// Both paths increment seraph_delta_fallback_total once.

import (
	"errors"
	"sort"
	"time"

	"seraph/internal/ast"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/window"
)

// WithDeltaEval enables delta-driven evaluation. It implies
// WithIncrementalSnapshots: the window delta is extracted from the
// rolling snapshot's mutations. Queries the delta evaluator cannot
// maintain fall back transparently to full re-evaluation (counted by
// seraph_delta_fallback_total); result bags are identical either way.
func WithDeltaEval(on bool) Option {
	return func(e *Engine) {
		e.deltaEval = on
		if on {
			e.incremental = true
		}
	}
}

// deltaState is one query's maintained evaluation state. Guarded by
// q.mu, like the rest of the query's evaluation state.
type deltaState struct {
	prog   *eval.DeltaProgram
	width  time.Duration // the single MATCH window width
	failed bool          // permanent fallback to full evaluation

	// ctrs collects maintenance events (float re-sums) from the
	// program's accumulators; drained into stats per round.
	ctrs *eval.DeltaCounters

	// matches holds every live match by canonical identity; prov is the
	// inverted provenance index used to invalidate matches when an
	// element they touch changes.
	matches map[string]*deltaMatch
	prov    map[eval.Seed]map[string]*deltaMatch

	// Shortest-path queries: the previous instant's per-anchor distance
	// maps (anchor id → opposite endpoint id → hops), diffed each round
	// to find the pairs whose result may have changed.
	spDist map[int64]map[int64]int

	// Non-aggregated queries maintain the result bag plus the current
	// round's net row delta.
	bag   *rowBag
	round *roundDelta

	// Ordered non-aggregated queries maintain an order-statistics bag
	// instead, plus the previously materialized (skip/limit-applied)
	// output table, diffed per round like the aggregated path.
	ord     *eval.OrderStat
	prevOut *eval.Table

	// Aggregated queries maintain groups of removable accumulators and
	// the previously materialized group table (diffed per round, which
	// is O(groups), not O(window)).
	groups     map[string]*eval.DeltaGroup
	groupOrder []string
	prevAgg    *eval.Table

	// Per-instant scratch, reused across rounds (q.mu serializes
	// rounds): the batched matcher's state, the row-key encoding
	// buffer, and the seed set/slice of apply.
	scratch *eval.MatchScratch
	keyBuf  []byte
	seedSet map[eval.Seed]bool
	seeds   []eval.Seed

	// Churn-ratio hysteresis bypass (see DESIGN.md): when a round's
	// delta is a large fraction of the window, per-seed anchored search
	// costs more than one full evaluation, so the round is evaluated
	// fully instead (counted by seraph_delta_bypass_total). bypassPrev
	// is the last bypass round's full output, which the diff operators
	// need; rounds counts evaluation rounds so the birth round (the
	// whole initial window arriving as additions) never bypasses.
	bypass       bool
	bypassPrev   *eval.Table
	rounds       int
	lastBypassed bool
}

// deltaMatch is one live match: its provenance (every element whose
// change invalidates it) and its contribution to the result — bag rows
// or aggregation inputs.
type deltaMatch struct {
	key     string
	touched []eval.Seed
	rows    []*bagRow       // non-aggregated
	inputs  []eval.AggInput // aggregated
}

// rowBag is the maintained result bag: insertion-ordered rows with
// tombstones, compacted when the dead outnumber the live.
type rowBag struct {
	rows []*bagRow
	live int
}

type bagRow struct {
	key  string
	vals []value.Value
	dead bool
	sort []value.Value // ORDER BY key values (ordered queries only)
}

func (b *rowBag) add(r *bagRow) {
	b.rows = append(b.rows, r)
	b.live++
}

func (b *rowBag) kill(r *bagRow) {
	if !r.dead {
		r.dead = true
		b.live--
	}
}

func (b *rowBag) compact() {
	if len(b.rows) <= 2*b.live+16 {
		return
	}
	keep := b.rows[:0]
	for _, r := range b.rows {
		if !r.dead {
			keep = append(keep, r)
		}
	}
	b.rows = keep
}

// materialize returns the live rows in insertion order.
func (b *rowBag) materialize(cols []string) *eval.Table {
	out := &eval.Table{Cols: cols, Rows: make([][]value.Value, 0, b.live)}
	for _, r := range b.rows {
		if !r.dead {
			out.Rows = append(out.Rows, r.vals)
		}
	}
	return out
}

// roundDelta accumulates one round's net row-count changes, keyed by
// row content so a row removed with one match and re-added by another
// nets to zero — exactly what BagDifference against the previous full
// result would conclude. Keys are tracked in first-touch order for
// deterministic emission.
type roundDelta struct {
	counts map[string]*roundEntry
	order  []*roundEntry
}

type roundEntry struct {
	key   string
	count int
	vals  []value.Value
}

func newRoundDelta() *roundDelta {
	return &roundDelta{counts: map[string]*roundEntry{}}
}

func (rd *roundDelta) bump(key string, vals []value.Value, by int) {
	ent := rd.counts[key]
	if ent == nil {
		ent = &roundEntry{key: key, vals: vals}
		rd.counts[key] = ent
		rd.order = append(rd.order, ent)
	}
	ent.count += by
}

// bumpBytes is bump addressed by an encoded-key scratch buffer: the
// map read on string(key) is allocation-free, a canonical key string
// is only materialized for a row content first seen this round, and
// the canonical string is returned so callers (bagRow.key) share the
// entry's allocation instead of making their own.
func (rd *roundDelta) bumpBytes(key []byte, vals []value.Value, by int) string {
	ent := rd.counts[string(key)]
	if ent == nil {
		ent = &roundEntry{key: string(key), vals: vals}
		rd.counts[ent.key] = ent
		rd.order = append(rd.order, ent)
	}
	ent.count += by
	return ent.key
}

// reset clears the round in place, keeping the map and slice capacity
// for the next round.
func (rd *roundDelta) reset() {
	clear(rd.counts)
	rd.order = rd.order[:0]
}

// table materializes the positive (entered) or negative (exited) side
// of the round delta.
func (rd *roundDelta) table(cols []string, negative bool) *eval.Table {
	out := &eval.Table{Cols: cols}
	for _, ent := range rd.order {
		n := ent.count
		if negative {
			n = -n
		}
		for i := 0; i < n; i++ {
			out.Rows = append(out.Rows, ent.vals)
		}
	}
	return out
}

// op returns the query's stream operator (SNAPSHOT for RETURN-
// terminated registrations).
func (q *Query) op() ast.StreamOp {
	if q.emit != nil {
		return q.emit.Op
	}
	return ast.OpSnapshot
}

// ensureDelta decides, once per query, whether delta-driven evaluation
// applies, and if so creates the maintained state and the query's
// rolling snapshot with delta recording active from birth — so the
// static background graph and the first window load both arrive as
// delta additions and seed the initial matches. Caller holds q.mu.
func (e *Engine) ensureDelta(q *Query) *deltaState {
	if q.delta != nil {
		return q.delta
	}
	ds := &deltaState{}
	q.delta = ds
	fallback := func() *deltaState {
		ds.failed = true
		ds.prog = nil
		q.stats.DeltaFallbacks++
		q.qm.deltaFallback.Inc()
		if e.logger != nil {
			e.logger.Debug("seraph: delta evaluation not applicable, using full evaluation", "query", q.name)
		}
		return ds
	}
	prog := eval.CompileDelta(q.reg.Body)
	if prog == nil {
		return fallback()
	}
	ds.prog = prog
	ds.width = prog.Within()
	if ds.width == 0 {
		ds.width = q.cfg.Width
	}
	if q.rollers == nil {
		q.rollers = map[time.Duration]*rolling{}
	}
	if _, exists := q.rollers[ds.width]; exists {
		// A roller predating delta recording holds elements the recorder
		// never saw; the maintained state could not be seeded.
		return fallback()
	}
	r := newRolling()
	r.store.BeginDelta()
	if e.static != nil {
		if err := r.add(e.static); err != nil {
			return fallback()
		}
	}
	q.rollers[ds.width] = r
	ds.ctrs = &eval.DeltaCounters{}
	ds.matches = map[string]*deltaMatch{}
	ds.prov = map[eval.Seed]map[string]*deltaMatch{}
	switch {
	case prog.Aggregated():
		ds.groups = map[string]*eval.DeltaGroup{}
	case prog.Ordered():
		ds.ord = eval.NewOrderStat(prog.SortDesc())
	default:
		ds.bag = &rowBag{}
	}
	if prog.Shortest() {
		ds.spDist = map[int64]map[int64]int{}
	}
	return ds
}

// deltaAdvance runs one delta-driven round at instant ω: advance the
// rolling snapshot, drain its delta, invalidate and re-find matches,
// and produce the operator's output table. On a runtime bail it marks
// ds failed, rebuilds q.prev, and returns with ds.failed set so the
// caller re-evaluates ω through the classic path. Caller holds q.mu.
func (e *Engine) deltaAdvance(q *Query, ds *deltaState, ω time.Time) (out *eval.Table, iv stream.Interval, nodes, rels int, ok bool, err error) {
	iv, ok = q.cfg.ActiveWindow(ω)
	if !ok {
		return nil, iv, 0, 0, false, nil
	}
	roller := q.rollers[ds.width]

	t0 := time.Now()
	wiv, wok := window.ActiveWindowWidth(q.cfg, ds.width, ω)
	var elems []stream.Element
	if wok {
		elems = q.hist.Substream(wiv)
	}
	added, removed, aerr := roller.advance(elems)
	q.stats.IncrementalAdds += added
	q.stats.IncrementalRemoves += removed
	q.qm.incAdds.Add(int64(added))
	q.qm.incRemoves.Add(int64(removed))
	snapNanos := int64(time.Since(t0))
	q.stats.SnapshotNanos += snapNanos
	q.qm.snapshotBuild.Observe(time.Duration(snapNanos))
	if aerr != nil {
		return nil, iv, 0, 0, true, aerr
	}
	q.stats.WindowElements = len(elems)
	q.qm.windowElems.Set(int64(len(elems)))

	delta := roller.store.TakeDelta()
	ctx := &eval.Ctx{
		Store:    roller.store,
		GraphFor: func(time.Duration) *graphstore.Store { return roller.store },
		Params:   q.params,
		Builtins: map[string]value.Value{
			"win_start": value.NewDateTime(iv.Start),
			"win_end":   value.NewDateTime(iv.End),
			"now":       value.NewDateTime(ω),
		},
		Match:               q.qm.match,
		DisableMatchIndexes: e.scanMatcher,
	}

	t1 := time.Now()
	// Churn-ratio hysteresis guard: when the round's delta is a large
	// fraction of the window, per-seed anchored search costs more than
	// one full evaluation — delta mode must never lose to full. Enter
	// bypass above the configured ratio, leave at half of it (so a
	// workload hovering at the threshold does not thrash between
	// reseeds), and never on the birth round, where the whole initial
	// window arrives as additions and seeds the maintained state.
	ds.lastBypassed = false
	exited := false
	if r := e.deltaBypass; r > 0 && ds.rounds > 0 {
		size := roller.store.NumNodes() + roller.store.NumRels()
		if size < 1 {
			size = 1
		}
		churn := float64(delta.Len()) / float64(size)
		if !ds.bypass && churn > r {
			ds.enterBypass()
		} else if ds.bypass && churn <= r/2 {
			out, err = ds.exitBypass(ctx, roller.store, q.op())
			exited = true
		}
	}
	switch {
	case exited:
		// exitBypass already reseeded and answered this round.
	case ds.bypass:
		ds.lastBypassed = true
		out, err = ds.bypassRound(ctx, q.op(), q.reg.Body)
	default:
		if err = ds.apply(ctx, roller.store, delta); err == nil {
			out, err = ds.emit(ctx, q.op())
		}
	}
	ds.rounds++
	cypher := int64(time.Since(t1))
	q.stats.CypherNanos += cypher
	q.qm.cypherEval.Observe(time.Duration(cypher))
	if ds.ctrs != nil && ds.ctrs.Resums > 0 {
		q.stats.DeltaResums += int(ds.ctrs.Resums)
		q.qm.deltaResum.Add(ds.ctrs.Resums)
		ds.ctrs.Resums = 0
	}
	if err != nil {
		if errors.Is(err, eval.ErrDeltaUnsupported) {
			if ferr := e.deltaFallback(q, ds, ω); ferr != nil {
				return nil, iv, 0, 0, true, ferr
			}
			return nil, iv, 0, 0, true, nil // ds.failed: caller re-evaluates classically
		}
		return nil, iv, 0, 0, true, err
	}
	return out, iv, roller.store.NumNodes(), roller.store.NumRels(), true, nil
}

// deltaFallback permanently abandons delta evaluation for q mid-run:
// stops recording, drops the maintained state, and rebuilds the
// previous instant's full result so ON ENTERING / ON EXITING diffs
// continue exactly through the classic path. The stream history still
// covers the previous window (RetentionHorizon keeps width+slide), so
// the rebuild is always possible.
func (e *Engine) deltaFallback(q *Query, ds *deltaState, ω time.Time) error {
	ds.failed = true
	ds.prog = nil
	ds.ctrs = nil
	ds.matches = nil
	ds.prov = nil
	ds.spDist = nil
	ds.bag = nil
	ds.round = nil
	ds.ord = nil
	ds.prevOut = nil
	ds.groups = nil
	ds.groupOrder = nil
	ds.prevAgg = nil
	ds.scratch = nil
	ds.keyBuf = nil
	ds.seedSet = nil
	ds.seeds = nil
	ds.bypass = false
	ds.bypassPrev = nil
	if r := q.rollers[ds.width]; r != nil {
		r.store.StopDelta()
	}
	q.stats.DeltaFallbacks++
	q.qm.deltaFallback.Inc()
	if e.logger != nil {
		e.logger.Warn("seraph: delta evaluation bailed, falling back to full evaluation",
			"query", q.name, "at", ω)
	}
	if q.op() == ast.OpSnapshot || !ω.After(q.cfg.Start) {
		q.prev = nil
		return nil
	}
	prevω := ω.Add(-q.cfg.Slide)
	result, _, _, _, ok, err := e.computeResult(q, prevω)
	if err != nil {
		return err
	}
	if ok {
		q.prev = result
	} else {
		q.prev = nil
	}
	return nil
}

// apply processes one drained window delta: first invalidate every
// maintained match touching an exited or updated element, then find
// the new matches by anchored searches seeded at each added or updated
// element (plus the relationships incident to updated nodes, which
// covers matches whose only changed element is a variable-length trail
// intermediate).
func (ds *deltaState) apply(ctx *eval.Ctx, store *graphstore.Store, delta *graphstore.Delta) error {
	if ds.round == nil && ds.bag != nil {
		ds.round = newRoundDelta()
	}
	if ds.prog.Shortest() {
		// shortestPath is non-monotone; provenance invalidation cannot
		// see a match going stale. Maintained by distance-map diffing.
		return ds.applyShortest(ctx, store, delta)
	}

	// Invalidation. Removal order is canonical-key order so the round
	// delta and bag layout are deterministic.
	drop := map[string]*deltaMatch{}
	collect := func(s eval.Seed) {
		for k, m := range ds.prov[s] {
			drop[k] = m
		}
	}
	for _, id := range delta.RemovedNodes {
		collect(eval.Seed{ID: id})
	}
	for _, id := range delta.UpdatedNodes {
		collect(eval.Seed{ID: id})
	}
	for _, id := range delta.RemovedRels {
		collect(eval.Seed{Rel: true, ID: id})
	}
	for _, id := range delta.UpdatedRels {
		collect(eval.Seed{Rel: true, ID: id})
	}
	dropKeys := make([]string, 0, len(drop))
	for k := range drop {
		dropKeys = append(dropKeys, k)
	}
	sort.Strings(dropKeys)
	for _, k := range dropKeys {
		ds.dropMatch(drop[k])
	}

	// Seeding. Sorted for deterministic search and insertion order.
	// The set and slice are per-instant scratch, reused across rounds.
	if ds.seedSet == nil {
		ds.seedSet = map[eval.Seed]bool{}
	}
	clear(ds.seedSet)
	seeds := ds.seeds[:0]
	addSeed := func(s eval.Seed) {
		if !ds.seedSet[s] {
			ds.seedSet[s] = true
			seeds = append(seeds, s)
		}
	}
	for _, id := range delta.AddedNodes {
		addSeed(eval.Seed{ID: id})
	}
	for _, id := range delta.AddedRels {
		addSeed(eval.Seed{Rel: true, ID: id})
	}
	for _, id := range delta.UpdatedRels {
		addSeed(eval.Seed{Rel: true, ID: id})
	}
	for _, id := range delta.UpdatedNodes {
		addSeed(eval.Seed{ID: id})
		// Trail intermediates are not anchorable node positions; any
		// match crossing this node does so over an incident relationship.
		for _, r := range store.Outgoing(id) {
			addSeed(eval.Seed{Rel: true, ID: r.ID})
		}
		for _, r := range store.Incoming(id) {
			addSeed(eval.Seed{Rel: true, ID: r.ID})
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].Rel != seeds[j].Rel {
			return !seeds[i].Rel
		}
		return seeds[i].ID < seeds[j].ID
	})
	ds.seeds = seeds
	if len(seeds) == 0 {
		return nil
	}

	// One batched search over the whole seed slice: planner and
	// environment setup amortize per batch, and the matcher's maps and
	// row buffer come from ds.scratch instead of fresh allocations. The
	// emitted key and row are views into scratch buffers; the duplicate
	// check reads the map without materializing the key, and addMatch's
	// downstream (AggInputs/FinalRows*) never retains the input row.
	if ds.scratch == nil {
		ds.scratch = eval.NewMatchScratch()
	}
	sm := ds.prog.NewMatcher(ctx)
	return sm.ForEachSeededMatchBatch(ctx, store, seeds, ds.scratch,
		func(key []byte, row []value.Value, touched func() []eval.Seed) error {
			if _, exists := ds.matches[string(key)]; exists {
				return nil // survivor re-found from another seed
			}
			return ds.addMatch(ctx, string(key), row, touched())
		})
}

// applyShortest maintains a shortestPath query's matches: recompute the
// per-anchor shortest-distance maps (one BFS per anchor candidate),
// diff against the previous instant's maps, and re-run the full
// evaluator's exact per-pair search for just the dirty pairs — pairs
// whose hop count appeared, changed, or vanished, plus pairs with an
// updated endpoint (a property change alters the output row without
// moving any distance).
func (ds *deltaState) applyShortest(ctx *eval.Ctx, store *graphstore.Store, delta *graphstore.Delta) error {
	if delta.Empty() {
		return nil
	}
	sm := ds.prog.NewMatcher(ctx)
	anchorIdx := ds.prog.ShortestAnchor()
	newDist, err := sm.ShortestDistances(ctx, store, anchorIdx)
	if err != nil {
		return err
	}

	type spPair struct{ anchor, other int64 }
	dirty := map[spPair]bool{}
	for a, m := range newDist {
		old := ds.spDist[a]
		for o, d := range m {
			if od, ok := old[o]; !ok || od != d {
				dirty[spPair{a, o}] = true
			}
		}
	}
	for a, old := range ds.spDist {
		m := newDist[a]
		for o, d := range old {
			if nd, ok := m[o]; !ok || nd != d {
				dirty[spPair{a, o}] = true
			}
		}
	}
	for _, id := range delta.UpdatedNodes {
		if m := newDist[id]; m != nil {
			for o := range m {
				dirty[spPair{id, o}] = true
			}
		}
		for a, m := range newDist {
			if _, ok := m[id]; ok {
				dirty[spPair{a, id}] = true
			}
		}
	}

	pairs := make([]spPair, 0, len(dirty))
	for p := range dirty {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].anchor != pairs[j].anchor {
			return pairs[i].anchor < pairs[j].anchor
		}
		return pairs[i].other < pairs[j].other
	})
	for _, p := range pairs {
		// Pattern position order: the anchor may be either endpoint.
		id0, id1 := p.anchor, p.other
		if anchorIdx == 1 {
			id0, id1 = p.other, p.anchor
		}
		if m := ds.matches[eval.ShortestPairKey(id0, id1)]; m != nil {
			ds.dropMatch(m)
		}
		if m := newDist[p.anchor]; m == nil {
			continue // anchor gone: nothing to re-find
		} else if _, ok := m[p.other]; !ok {
			continue // pair unreachable (or past maxHops): no match
		}
		err := sm.ForEachShortestPair(ctx, store, id0, id1, func(key string, row []value.Value, touched []eval.Seed) error {
			if _, exists := ds.matches[key]; exists {
				return nil
			}
			return ds.addMatch(ctx, key, row, touched)
		})
		if err != nil {
			return err
		}
	}
	ds.spDist = newDist
	return nil
}

// addMatch evaluates a newly found match's contribution and registers
// it in the maintained state. Matches contributing no rows are not
// stored: they cannot affect future results, and skipping them keeps
// the provenance index proportional to the result, not the match set.
func (ds *deltaState) addMatch(ctx *eval.Ctx, key string, row []value.Value, touched []eval.Seed) error {
	m := &deltaMatch{key: key, touched: touched}
	if ds.prog.Aggregated() {
		ins, err := ds.prog.AggInputs(ctx, row)
		if err != nil {
			return err
		}
		if len(ins) == 0 {
			return nil
		}
		for _, in := range ins {
			g := ds.groups[in.GroupKey]
			if g == nil {
				g = ds.prog.NewGroup(in, ds.ctrs)
				ds.groups[in.GroupKey] = g
				ds.groupOrder = append(ds.groupOrder, in.GroupKey)
			}
			if err := g.Add(in); err != nil {
				return err
			}
		}
		m.inputs = ins
	} else if ds.ord != nil {
		krs, err := ds.prog.FinalRowsKeyed(ctx, row)
		if err != nil {
			return err
		}
		if len(krs) == 0 {
			return nil
		}
		for _, kr := range krs {
			ds.ord.Add(kr.Sort, kr.Vals)
			m.rows = append(m.rows, &bagRow{vals: kr.Vals, sort: kr.Sort})
		}
	} else {
		rows, err := ds.prog.FinalRows(ctx, row)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil
		}
		for _, rv := range rows {
			// Encode the row key into the reused buffer; bumpBytes hands
			// back the round's canonical string so the bag row shares it.
			ds.keyBuf = value.AppendKeyOf(ds.keyBuf[:0], rv...)
			br := &bagRow{key: ds.round.bumpBytes(ds.keyBuf, rv, +1), vals: rv}
			ds.bag.add(br)
			m.rows = append(m.rows, br)
		}
	}
	ds.matches[key] = m
	for _, s := range touched {
		ps := ds.prov[s]
		if ps == nil {
			ps = map[string]*deltaMatch{}
			ds.prov[s] = ps
		}
		ps[key] = m
	}
	return nil
}

// dropMatch withdraws a match's contribution and unregisters it.
func (ds *deltaState) dropMatch(m *deltaMatch) {
	delete(ds.matches, m.key)
	for _, s := range m.touched {
		ps := ds.prov[s]
		delete(ps, m.key)
		if len(ps) == 0 {
			delete(ds.prov, s)
		}
	}
	for _, br := range m.rows {
		if ds.ord != nil {
			ds.ord.Remove(br.sort, br.vals)
			continue
		}
		ds.bag.kill(br)
		ds.round.bump(br.key, br.vals, -1)
	}
	for _, in := range m.inputs {
		if g := ds.groups[in.GroupKey]; g != nil {
			g.Remove(in)
			if !g.Live() {
				delete(ds.groups, in.GroupKey)
			}
		}
	}
}

// emit produces the operator's output table from the maintained state
// and resets the round.
func (ds *deltaState) emit(ctx *eval.Ctx, op ast.StreamOp) (*eval.Table, error) {
	cols := ds.prog.Cols()
	if !ds.prog.Aggregated() {
		if ds.ord != nil {
			// Ordered: SKIP/LIMIT select rows relative to the whole bag, so
			// deltas are computed on the materialized output — O(skip+limit)
			// per round — not on per-row bag changes.
			cur, err := ds.orderedTable(ctx)
			if err != nil {
				return nil, err
			}
			prev := ds.prevOut
			if prev == nil {
				prev = &eval.Table{Cols: cols}
			}
			ds.prevOut = cur
			switch op {
			case ast.OpOnEntering:
				return eval.BagDifference(cur, prev)
			case ast.OpOnExiting:
				return eval.BagDifference(prev, cur)
			default:
				return cur, nil
			}
		}
		var out *eval.Table
		switch op {
		case ast.OpOnEntering:
			out = ds.round.table(cols, false)
		case ast.OpOnExiting:
			out = ds.round.table(cols, true)
		default:
			out = ds.bag.materialize(cols)
		}
		ds.round.reset()
		ds.bag.compact()
		return out, nil
	}

	cur, err := ds.aggTable(ctx)
	if err != nil {
		return nil, err
	}
	prev := ds.prevAgg
	if prev == nil {
		prev = &eval.Table{Cols: cols}
	}
	ds.prevAgg = cur
	switch op {
	case ast.OpOnEntering:
		return eval.BagDifference(cur, prev)
	case ast.OpOnExiting:
		return eval.BagDifference(prev, cur)
	default:
		return cur, nil
	}
}

// orderedTable materializes the ordered query's skip/limit-applied
// output from the order-statistics bag.
func (ds *deltaState) orderedTable(ctx *eval.Ctx) (*eval.Table, error) {
	skip, limit, hasLimit, err := ds.prog.Bounds(ctx)
	if err != nil {
		return nil, err
	}
	return ds.ord.Materialize(ds.prog.Cols(), skip, limit, hasLimit), nil
}

// aggTable materializes the live groups (insertion order, stale order
// entries skipped), including the empty-input row for keyless
// aggregations, ordered and sliced like the full evaluator — O(groups).
func (ds *deltaState) aggTable(ctx *eval.Ctx) (*eval.Table, error) {
	cur := &eval.Table{Cols: ds.prog.Cols()}
	seen := map[string]bool{}
	keep := ds.groupOrder[:0]
	for _, k := range ds.groupOrder {
		g := ds.groups[k]
		if g == nil || seen[k] {
			continue
		}
		seen[k] = true
		keep = append(keep, k)
		row, err := ds.prog.GroupRow(ctx, g)
		if err != nil {
			return nil, err
		}
		cur.Rows = append(cur.Rows, row)
	}
	ds.groupOrder = keep
	if len(cur.Rows) == 0 && !ds.prog.HasKeys() {
		row, err := ds.prog.EmptyAggRow(ctx)
		if err != nil {
			return nil, err
		}
		cur.Rows = append(cur.Rows, row)
	}
	if ds.prog.Ordered() {
		// The group table is O(groups); sorting and slicing it here costs
		// what the full evaluator pays after aggregation.
		if err := ds.prog.OrderSlice(ctx, cur); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// currentOutput is the previous round's materialized output — what the
// diff operators would have used as their "previous" side next round.
func (ds *deltaState) currentOutput() *eval.Table {
	switch {
	case ds.prog.Aggregated():
		if ds.prevAgg != nil {
			return ds.prevAgg
		}
	case ds.ord != nil:
		if ds.prevOut != nil {
			return ds.prevOut
		}
	default:
		return ds.bag.materialize(ds.prog.Cols())
	}
	return &eval.Table{Cols: ds.prog.Cols()}
}

// enterBypass switches the query to full-evaluation rounds: the
// previous round's output (which the diff operators still need) is
// captured, then the maintained per-match state is dropped — keeping it
// warm through high churn would cost more per round than the reseed
// that exitBypass pays once on the way back.
func (ds *deltaState) enterBypass() {
	ds.bypassPrev = ds.currentOutput()
	ds.bypass = true
	clear(ds.matches)
	clear(ds.prov)
	if ds.spDist != nil {
		ds.spDist = map[int64]map[int64]int{}
	}
	switch {
	case ds.prog.Aggregated():
		ds.groups = map[string]*eval.DeltaGroup{}
		ds.groupOrder = nil
		ds.prevAgg = nil
	case ds.ord != nil:
		ds.ord = eval.NewOrderStat(ds.prog.SortDesc())
		ds.prevOut = nil
	default:
		ds.bag = &rowBag{}
		if ds.round != nil {
			ds.round.reset()
		}
	}
}

// bypassRound answers one bypassed round with a single full evaluation
// of the query body, diffed against the previous round's output.
func (ds *deltaState) bypassRound(ctx *eval.Ctx, op ast.StreamOp, body *ast.Query) (*eval.Table, error) {
	cur, err := eval.EvalQuery(ctx, body)
	if err != nil {
		return nil, err
	}
	prev := ds.bypassPrev
	if prev == nil {
		prev = &eval.Table{Cols: cur.Cols}
	}
	ds.bypassPrev = cur
	switch op {
	case ast.OpOnEntering:
		return eval.BagDifference(cur, prev)
	case ast.OpOnExiting:
		return eval.BagDifference(prev, cur)
	default:
		return cur, nil
	}
}

// exitBypass reseeds the maintained state from the whole current
// window, replayed as one synthetic all-added delta, and produces the
// round's output by diffing the rebuilt result against the last bypass
// round's table. The bogus round delta the reseed accumulates (every
// row "entered") is discarded — relative to the previous round only the
// real churn changed, and the diff against bypassPrev captures exactly
// that.
func (ds *deltaState) exitBypass(ctx *eval.Ctx, store *graphstore.Store, op ast.StreamOp) (*eval.Table, error) {
	synth := &graphstore.Delta{}
	for _, n := range store.AllNodes() {
		synth.AddedNodes = append(synth.AddedNodes, n.ID)
	}
	for _, r := range store.AllRels() {
		synth.AddedRels = append(synth.AddedRels, r.ID)
	}
	if err := ds.apply(ctx, store, synth); err != nil {
		return nil, err
	}
	if ds.round != nil {
		ds.round.reset()
	}
	var cur *eval.Table
	var err error
	switch {
	case ds.prog.Aggregated():
		if cur, err = ds.aggTable(ctx); err == nil {
			ds.prevAgg = cur
		}
	case ds.ord != nil:
		if cur, err = ds.orderedTable(ctx); err == nil {
			ds.prevOut = cur
		}
	default:
		cur = ds.bag.materialize(ds.prog.Cols())
	}
	if err != nil {
		return nil, err
	}
	prev := ds.bypassPrev
	if prev == nil {
		prev = &eval.Table{Cols: ds.prog.Cols()}
	}
	ds.bypass = false
	ds.bypassPrev = nil
	switch op {
	case ast.OpOnEntering:
		return eval.BagDifference(cur, prev)
	case ast.OpOnExiting:
		return eval.BagDifference(prev, cur)
	default:
		return cur, nil
	}
}
