package engine

import (
	"time"

	"seraph/internal/ast"
	"seraph/internal/eval"
	"seraph/internal/stream"
)

// Result is one output of a registered continuous query: a
// time-annotated table (Definition 5.6) produced at evaluation instant
// At, after applying the query's stream operator. The Table includes
// the reserved win_start and win_end columns.
type Result struct {
	// Query is the registration name.
	Query string
	// At is the evaluation time instant ω ∈ ET.
	At time.Time
	// Window is the active window the snapshot graph was built from.
	Window stream.Interval
	// Op is the stream operator that produced this result.
	Op ast.StreamOp
	// Table is the emitted time-annotated table.
	Table *eval.Table
	// SnapshotNodes/SnapshotRels describe the snapshot graph size
	// (useful for monitoring and benchmarks).
	SnapshotNodes int
	SnapshotRels  int
	// Skipped marks an instant shed by deadline overload protection
	// (WithEvalDeadline): the query was not evaluated at At, and Table
	// is an empty placeholder. Ψ(At) is undefined rather than empty —
	// consumers must not treat a skipped result as "no rows matched".
	Skipped bool
}

// Sink receives results from the engine. Implementations must be fast
// or hand off to their own goroutine; the engine calls sinks
// synchronously from its evaluation loop to preserve result order.
type Sink func(Result)

// Collector is a Sink that accumulates all results, useful in tests
// and batch experiments.
type Collector struct {
	Results []Result
}

// Sink returns a Sink that appends to the collector.
func (c *Collector) Sink() Sink {
	return func(r Result) { c.Results = append(c.Results, r) }
}

// NonEmpty returns only the results whose tables contain rows.
func (c *Collector) NonEmpty() []Result {
	var out []Result
	for _, r := range c.Results {
		if r.Table.Len() > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Last returns the most recent result, or nil.
func (c *Collector) Last() *Result {
	if len(c.Results) == 0 {
		return nil
	}
	return &c.Results[len(c.Results)-1]
}

// At returns the result produced at instant t, or nil.
func (c *Collector) At(t time.Time) *Result {
	for i := range c.Results {
		if c.Results[i].At.Equal(t) {
			return &c.Results[i]
		}
	}
	return nil
}
