package engine

import (
	"bytes"
	"strings"
	"testing"

	"seraph/internal/ast"
	"seraph/internal/parser"
	"seraph/internal/value"
	"seraph/internal/workload"
)

// TestCheckpointRestoreMidStream: running the paper's Figure 1 stream
// with a checkpoint/restore in the middle produces exactly the same
// emissions as an uninterrupted run — including the ON ENTERING diffs
// that span the restart.
func TestCheckpointRestoreMidStream(t *testing.T) {
	elems := workload.Figure1Stream()

	// Reference: uninterrupted run.
	ref := &Collector{}
	e := New()
	if _, err := e.RegisterSource(workload.StudentTrickQuery, ref.Sink()); err != nil {
		t.Fatal(err)
	}
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted run: process the first three events (through the
	// 15:15 emission of Table 5), checkpoint, restore, continue.
	part1 := &Collector{}
	e1 := New()
	if _, err := e1.RegisterSource(workload.StudentTrickQuery, part1.Sink()); err != nil {
		t.Fatal(err)
	}
	for _, el := range elems[:3] {
		if err := e1.Push(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := e1.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e1.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	part2 := &Collector{}
	e2, err := Restore(&buf, func(name string) Sink {
		if name != "student_trick" {
			t.Errorf("unexpected query name %q", name)
		}
		return part2.Sink()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range elems[3:] {
		if err := e2.Push(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := e2.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}

	combined := append(append([]Result(nil), part1.Results...), part2.Results...)
	if len(combined) != len(ref.Results) {
		t.Fatalf("evaluations: %d interrupted vs %d reference", len(combined), len(ref.Results))
	}
	for i := range ref.Results {
		a, b := ref.Results[i], combined[i]
		if !a.At.Equal(b.At) {
			t.Fatalf("instant %d: %s vs %s", i, a.At, b.At)
		}
		if !sameBag(a.Table, b.Table) {
			t.Errorf("tables differ at %s:\nref:\n%s\nrestored:\n%s",
				a.At.Format("15:04"), a.Table, b.Table)
		}
	}
	// The Table 6 emission (user 5678, nothing else) happened after the
	// restore — proving the ON ENTERING diff survived it.
	last := part2.Results[len(part2.Results)-1]
	if last.Table.Len() != 1 || last.Table.Get(0, "r.user_id").Int() != 5678 {
		t.Errorf("post-restore Table 6 emission:\n%s", last.Table)
	}
}

// TestCheckpointPreservesConfiguration: options, stream bindings and
// stats round-trip.
func TestCheckpointPreservesConfiguration(t *testing.T) {
	e := New(WithSnapshotCache(true))
	if _, err := e.RegisterSourceOn("plant-a", `
REGISTER QUERY q STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT30S
  EMIT count(*) AS n
  SNAPSHOT EVERY PT10S
}`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.PushStream("plant-a", sensorGraph(1, "s1", 1), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(20)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"cache": true`) {
		t.Error("cache flag missing from checkpoint")
	}
	e2, err := Restore(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := e2.Queries()
	if len(qs) != 1 || qs[0].Stream() != "plant-a" {
		t.Fatalf("restored queries: %+v", qs)
	}
	if qs[0].Stats().Evaluations != 3 {
		t.Errorf("restored stats: %+v", qs[0].Stats())
	}
	// The restored engine keeps evaluating on schedule.
	col := &Collector{}
	// Rebind by re-registering is not allowed; instead restore again
	// with a sink.
	e3, err := Restore(bytes.NewReader(buf.Bytes()), func(string) Sink { return col.Sink() })
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.AdvanceTo(tick(40)); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != 2 { // t=30, t=40
		t.Errorf("post-restore evaluations = %d", len(col.Results))
	}
}

// TestCheckpointRejectsParams: parameterized queries cannot checkpoint.
func TestCheckpointRejectsParams(t *testing.T) {
	e := New()
	reg := mustParseReg(t, `
REGISTER QUERY p STARTING AT 2026-07-06T10:00:00
{ MATCH (a) WITHIN PT10S WHERE a.v = $x EMIT a EVERY PT5S }`)
	if _, err := e.RegisterWithParams(reg, nil, map[string]value.Value{"x": value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err == nil {
		t.Error("checkpoint with params must fail")
	}
}

// TestRestoreErrors: malformed checkpoints are rejected.
func TestRestoreErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "queries": [{"source": "NOT SERAPH"}]}`,
	}
	for _, c := range cases {
		if _, err := Restore(strings.NewReader(c), nil); err == nil {
			t.Errorf("Restore(%q) should fail", c)
		}
	}
}

func mustParseReg(t *testing.T, src string) *ast.Registration {
	t.Helper()
	reg, err := parser.ParseRegistration(src)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}
