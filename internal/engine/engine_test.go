package engine

import (
	"strings"
	"testing"
	"time"

	"seraph/internal/pg"
	"seraph/internal/value"
	"seraph/internal/window"
)

var base = time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

func tick(sec int) time.Time { return base.Add(time.Duration(sec) * time.Second) }

// sensorGraph builds one event carrying a single reading relationship
// (s:Sensor {name})-[:READ {v}]->(z:Zone).
func sensorGraph(relID int64, sensor string, v int64) *pg.Graph {
	g := pg.New()
	sid := int64(1)
	if sensor == "s2" {
		sid = 2
	}
	g.AddNode(&value.Node{ID: sid, Labels: []string{"Sensor"}, Props: map[string]value.Value{
		"name": value.NewString(sensor)}})
	g.AddNode(&value.Node{ID: 100, Labels: []string{"Zone"}, Props: map[string]value.Value{}})
	if err := g.AddRel(&value.Relationship{ID: relID, StartID: sid, EndID: 100, Type: "READ",
		Props: map[string]value.Value{"v": value.NewInt(v)}}); err != nil {
		panic(err)
	}
	return g
}

const sensorQuery = `
REGISTER QUERY hot STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z:Zone)
  WITHIN PT10S
  WHERE r.v > 40
  EMIT s.name AS sensor, r.v AS v
  %s EVERY PT5S
}`

func driveSensors(t *testing.T, e *Engine, op string) *Collector {
	t.Helper()
	col := &Collector{}
	src := strings.Replace(sensorQuery, "%s", op, 1)
	if _, err := e.RegisterSource(src, col.Sink()); err != nil {
		t.Fatal(err)
	}
	// Readings: hot at t=0 (41), t=5 (50), cool at t=10, hot at t=15.
	events := []struct {
		at  int
		val int64
	}{{0, 41}, {5, 50}, {10, 20}, {15, 60}}
	for i, ev := range events {
		if err := e.Push(sensorGraph(int64(1000+i), "s1", ev.val), tick(ev.at)); err != nil {
			t.Fatal(err)
		}
		if err := e.AdvanceTo(tick(ev.at)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTo(tick(30)); err != nil {
		t.Fatal(err)
	}
	return col
}

// rowsAt returns the (sensor, v) pairs emitted at the given instant.
func rowsAt(col *Collector, at time.Time) []int64 {
	r := col.At(at)
	if r == nil {
		return nil
	}
	var out []int64
	for i := range r.Table.Rows {
		out = append(out, r.Table.Get(i, "v").Int())
	}
	return out
}

func TestSnapshotOperatorReEmits(t *testing.T) {
	col := driveSensors(t, New(), "SNAPSHOT")
	// Window 10s, slide 5s. Reading 41 at t=0 is visible at evals t=0,
	// t=5 and t=10 ((t-10, t] contains 0 for t in {0, 5, 10}).
	if got := rowsAt(col, tick(0)); len(got) != 1 || got[0] != 41 {
		t.Errorf("t=0: %v", got)
	}
	if got := rowsAt(col, tick(5)); len(got) != 2 {
		t.Errorf("t=5 should re-emit 41 and 50: %v", got)
	}
	// Window (0, 10] excludes the t=0 reading: only 50 remains.
	if got := rowsAt(col, tick(10)); len(got) != 1 || got[0] != 50 {
		t.Errorf("t=10: %v", got)
	}
	// Window (5, 15]: readings at 10 (cool) and 15 (60) → one hot row.
	if got := rowsAt(col, tick(15)); len(got) != 1 || got[0] != 60 {
		t.Errorf("t=15: %v", got)
	}
}

func TestOnEnteringEmitsOnlyNew(t *testing.T) {
	col := driveSensors(t, New(), "ON ENTERING")
	if got := rowsAt(col, tick(0)); len(got) != 1 || got[0] != 41 {
		t.Errorf("t=0: %v", got)
	}
	// t=5: 41 already seen, only 50 is new.
	if got := rowsAt(col, tick(5)); len(got) != 1 || got[0] != 50 {
		t.Errorf("t=5: %v", got)
	}
	// t=10: nothing new.
	if got := rowsAt(col, tick(10)); len(got) != 0 {
		t.Errorf("t=10: %v", got)
	}
	// t=15: 60 is new.
	if got := rowsAt(col, tick(15)); len(got) != 1 || got[0] != 60 {
		t.Errorf("t=15: %v", got)
	}
	// t=20, t=25, t=30: nothing new.
	for _, s := range []int{20, 25, 30} {
		if got := rowsAt(col, tick(s)); len(got) != 0 {
			t.Errorf("t=%d: %v", s, got)
		}
	}
}

func TestOnExitingEmitsDepartures(t *testing.T) {
	col := driveSensors(t, New(), "ON EXITING")
	// t=0, t=5: nothing left yet.
	if got := rowsAt(col, tick(0)); len(got) != 0 {
		t.Errorf("t=0: %v", got)
	}
	if got := rowsAt(col, tick(5)); len(got) != 0 {
		t.Errorf("t=5: %v", got)
	}
	// t=10: previous eval (t=5) had {41, 50}; the (0, 10] window drops
	// the t=0 reading → exits {41}.
	if got := rowsAt(col, tick(10)); len(got) != 1 || got[0] != 41 {
		t.Errorf("t=10 exits: %v", got)
	}
	// t=15: previous eval had {50}; now {60} → exits {50}.
	got := rowsAt(col, tick(15))
	if len(got) != 1 || got[0] != 50 {
		t.Errorf("t=15 exits: %v", got)
	}
	// t=25: 60 (t=15) exits the (15, 25] window.
	got = rowsAt(col, tick(25))
	if len(got) != 1 || got[0] != 60 {
		t.Errorf("t=25 exits: %v", got)
	}
}

func TestWinStartEndBuiltins(t *testing.T) {
	e := New()
	col := &Collector{}
	_, err := e.RegisterSource(`
REGISTER QUERY w STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT s.name AS sensor, win_end - win_start AS width
  SNAPSHOT EVERY PT5S
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(0)); err != nil {
		t.Fatal(err)
	}
	r := col.At(tick(0))
	if r == nil || r.Table.Len() != 1 {
		t.Fatalf("result: %+v", r)
	}
	if got := r.Table.Get(0, "width"); got.Duration() != 10*time.Second {
		t.Errorf("win_end - win_start = %s", got)
	}
	// The annotated columns are present and correct.
	if ws := r.Table.Get(0, "win_start"); !ws.DateTime().Equal(tick(-10)) {
		t.Errorf("win_start = %s", ws)
	}
	if we := r.Table.Get(0, "win_end"); !we.DateTime().Equal(tick(0)) {
		t.Errorf("win_end = %s", we)
	}
}

func TestReturnRegistrationRunsOnce(t *testing.T) {
	e := New()
	col := &Collector{}
	_, err := e.RegisterSource(`
REGISTER QUERY once STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  RETURN count(*) AS readings
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(60)); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != 1 {
		t.Fatalf("RETURN registration emitted %d results, want 1", len(col.Results))
	}
	if col.Results[0].Table.Get(0, "readings").Int() != 1 {
		t.Errorf("count = %s", col.Results[0].Table.Get(0, "readings"))
	}
}

func TestStartNowResolvesOnFirstPush(t *testing.T) {
	e := New()
	col := &Collector{}
	_, err := e.RegisterSource(`
REGISTER QUERY nowq STARTING AT NOW
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT s.name AS sensor
  SNAPSHOT EVERY PT5S
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	// No evaluations before any input.
	if err := e.AdvanceTo(tick(100)); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != 0 {
		t.Fatal("no evaluations expected before first element")
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(120)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(130)); err != nil {
		t.Fatal(err)
	}
	// ω₀ = first element time (t=120): evals at 120, 125, 130.
	if len(col.Results) != 3 {
		t.Fatalf("evaluations = %d, want 3", len(col.Results))
	}
	if !col.Results[0].At.Equal(tick(120)) {
		t.Errorf("first eval at %s", col.Results[0].At)
	}
}

func TestRegistrationValidation(t *testing.T) {
	e := New()
	if _, err := e.RegisterSource(`
REGISTER QUERY bad STARTING AT NOW
{ MATCH (a) RETURN a }`, nil); err == nil {
		t.Error("missing WITHIN must fail")
	}
	if _, err := e.RegisterSource(`
REGISTER QUERY ok STARTING AT NOW
{ MATCH (a) WITHIN PT1S EMIT a EVERY PT1S }`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterSource(`
REGISTER QUERY ok STARTING AT NOW
{ MATCH (a) WITHIN PT1S EMIT a EVERY PT1S }`, nil); err == nil {
		t.Error("duplicate name must fail")
	}
	if err := e.Deregister("ok"); err != nil {
		t.Fatal(err)
	}
	if err := e.Deregister("ok"); err == nil {
		t.Error("double deregister must fail")
	}
	if len(e.Queries()) != 0 {
		t.Error("registry should be empty")
	}
}

func TestHistoryPruning(t *testing.T) {
	e := New()
	q, err := e.RegisterSource(`
REGISTER QUERY p STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT s.name AS sensor
  SNAPSHOT EVERY PT5S
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.Push(sensorGraph(int64(i+1), "s1", 1), tick(i*5)); err != nil {
			t.Fatal(err)
		}
		if err := e.AdvanceTo(tick(i * 5)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Stats().ElementsSeen != 100 {
		t.Errorf("elements seen = %d", q.Stats().ElementsSeen)
	}
	// Retention = width (10s) + slide (5s) → at most ~4 elements at 5s
	// spacing.
	if n := q.BufferedElements(); n > 6 {
		t.Errorf("history not pruned: %d elements buffered", n)
	}
}

func TestSnapshotCacheSkipsEqualWindows(t *testing.T) {
	run := func(cache bool) (*Collector, Stats) {
		e := New(WithSnapshotCache(cache))
		col := &Collector{}
		q, err := e.RegisterSource(`
REGISTER QUERY c STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT1M
  EMIT s.name AS sensor, r.v AS v
  SNAPSHOT EVERY PT5S
}`, col.Sink())
		if err != nil {
			t.Fatal(err)
		}
		// One element, then a long quiet period: window contents stay
		// identical for several evaluations.
		if err := e.Push(sensorGraph(1, "s1", 7), tick(0)); err != nil {
			t.Fatal(err)
		}
		if err := e.AdvanceTo(tick(30)); err != nil {
			t.Fatal(err)
		}
		return col, q.Stats()
	}
	colOff, statsOff := run(false)
	colOn, statsOn := run(true)
	if statsOff.SkippedByCache != 0 {
		t.Error("cache disabled should never skip")
	}
	if statsOn.SkippedByCache == 0 {
		t.Error("cache enabled should skip equal windows")
	}
	// Results identical either way.
	if len(colOff.Results) != len(colOn.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(colOff.Results), len(colOn.Results))
	}
	for i := range colOff.Results {
		a, b := colOff.Results[i], colOn.Results[i]
		if a.Table.Len() != b.Table.Len() || !a.At.Equal(b.At) {
			t.Errorf("result %d differs with cache", i)
		}
	}
}

func TestPerPatternWindows(t *testing.T) {
	// Two MATCH clauses with different WITHIN widths: the long window
	// sees old sensors, the short window only fresh zones.
	e := New()
	col := &Collector{}
	_, err := e.RegisterSource(`
REGISTER QUERY two STARTING AT 2026-07-06T10:01:00
{
  MATCH (s:Sensor) WITHIN PT2M
  MATCH (z:Zone) WITHIN PT10S
  EMIT s.name AS sensor, count(z) AS freshZones
  SNAPSHOT EVERY PT1M
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	// Sensor event at t=0 (old); zone-only event at t=60 (fresh).
	g1 := pg.New()
	g1.AddNode(&value.Node{ID: 1, Labels: []string{"Sensor"}, Props: map[string]value.Value{
		"name": value.NewString("s1")}})
	if err := e.Push(g1, tick(0)); err != nil {
		t.Fatal(err)
	}
	g2 := pg.New()
	g2.AddNode(&value.Node{ID: 100, Labels: []string{"Zone"}, Props: map[string]value.Value{}})
	if err := e.Push(g2, tick(60)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(60)); err != nil {
		t.Fatal(err)
	}
	r := col.At(tick(60))
	if r == nil || r.Table.Len() != 1 {
		t.Fatalf("result: %+v", r)
	}
	// The sensor (t=0) is inside the 2m window; the zone (t=60) is
	// inside the 10s window.
	if got := r.Table.Get(0, "freshZones").Int(); got != 1 {
		t.Errorf("freshZones = %d", got)
	}
	if got := r.Table.Get(0, "sensor").Str(); got != "s1" {
		t.Errorf("sensor = %s", got)
	}
}

func TestStrictBoundsMode(t *testing.T) {
	e := New(WithBounds(window.BoundsStrict))
	col := &Collector{}
	_, err := e.RegisterSource(`
REGISTER QUERY s STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT r.v AS v
  SNAPSHOT EVERY PT5S
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	// Element exactly at an evaluation instant: in strict close-open
	// windows, [t, t+10) starting at the instant itself contains it.
	if err := e.Push(sensorGraph(1, "s1", 7), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(0)); err != nil {
		t.Fatal(err)
	}
	r := col.At(tick(0))
	if r == nil {
		t.Fatal("no result at t=0")
	}
	// Strict active window at t=0: earliest [s, s+10) containing 0 with
	// s on the 5s grid is [-5, 5).
	if !r.Window.Start.Equal(tick(-5)) || !r.Window.End.Equal(tick(5)) {
		t.Errorf("strict window = %s", r.Window)
	}
	if r.Table.Len() != 1 {
		t.Errorf("element at instant should match in strict mode: %d rows", r.Table.Len())
	}
}

func TestMultiQueryInterleaving(t *testing.T) {
	// Global timestamp-order interleaving across queries is guaranteed
	// at parallelism 1 (at higher parallelism only each query's own
	// order is fixed).
	e := New(WithParallelism(1))
	var order []string
	mkSink := func(name string) Sink {
		return func(r Result) { order = append(order, name+"@"+r.At.Format("05")) }
	}
	for _, spec := range []struct{ name, every string }{
		{"fast", "PT5S"}, {"slow", "PT10S"},
	} {
		_, err := e.RegisterSource(strings.NewReplacer("NAME", spec.name, "EVERY_D", spec.every).Replace(`
REGISTER QUERY NAME STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT30S
  EMIT s.name AS n
  SNAPSHOT EVERY EVERY_D
}`), mkSink(spec.name))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(10)); err != nil {
		t.Fatal(err)
	}
	want := []string{"fast@00", "slow@00", "fast@05", "fast@10", "slow@10"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPushOutOfOrderRejected(t *testing.T) {
	e := New()
	if _, err := e.RegisterSource(`
REGISTER QUERY q STARTING AT 2026-07-06T10:00:00
{ MATCH (a) WITHIN PT10S EMIT a EVERY PT5S }`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(10)); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(2, "s1", 1), tick(5)); err == nil {
		t.Error("out-of-order push must fail")
	}
}

// TestQueryFailureIsolation: a query whose evaluation errors stops
// permanently with its error recorded, while other queries keep
// running.
func TestQueryFailureIsolation(t *testing.T) {
	e := New()
	okCol := &Collector{}
	bad, err := e.RegisterSource(`
REGISTER QUERY bad STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT sum(s.name) AS boom
  SNAPSHOT EVERY PT5S
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterSource(`
REGISTER QUERY good STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT10S
  EMIT count(*) AS n
  SNAPSHOT EVERY PT5S
}`, okCol.Sink()); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(1, "s1", 7), tick(0)); err != nil {
		t.Fatal(err)
	}
	err = e.AdvanceTo(tick(10))
	if err == nil {
		t.Fatal("AdvanceTo should surface the failed query's error")
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error should name the query: %v", err)
	}
	if bad.Err() == nil {
		t.Error("failed query should record its error")
	}
	// The good query ran all three instants.
	if len(okCol.Results) != 3 {
		t.Errorf("good query evaluations = %d, want 3", len(okCol.Results))
	}
	// Further advances are clean: the failed query is dormant.
	if err := e.AdvanceTo(tick(20)); err != nil {
		t.Errorf("post-failure advance: %v", err)
	}
}

// TestStrictModeGapSkipsEvaluation: in strict bounds mode with slide
// greater than width, evaluation instants falling into window gaps are
// skipped (Definition 5.11 finds no containing window).
func TestStrictModeGapSkipsEvaluation(t *testing.T) {
	e := New(WithBounds(window.BoundsStrict))
	col := &Collector{}
	if _, err := e.RegisterSource(`
REGISTER QUERY gap STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT2S
  EMIT count(*) AS n
  SNAPSHOT EVERY PT10S
}`, col.Sink()); err != nil {
		t.Fatal(err)
	}
	// Instants on the ω₀+10s grid: [10:00:00, 10:00:02) windows exist
	// at grid starts, so evaluations AT grid starts land inside their
	// own [start, start+2s) windows and do run; an instant like
	// 10:00:10 is in [10:00:10, 10:00:12) → runs too. All ET instants
	// are themselves window starts here, so none are skipped — but an
	// element arriving between windows is invisible.
	if err := e.Push(sensorGraph(1, "s1", 1), tick(5)); err != nil {
		t.Fatal(err) // t=5 lies in the gap (10:00:02..10:00:10)
	}
	if err := e.AdvanceTo(tick(10)); err != nil {
		t.Fatal(err)
	}
	for _, r := range col.Results {
		if r.Table.Get(0, "n").Int() != 0 {
			t.Errorf("element in window gap must be invisible at %s", r.At)
		}
	}
	if len(col.Results) == 0 {
		t.Fatal("evaluations expected")
	}
}

// TestIncrementalPlusCache: the two optimizations compose.
func TestIncrementalPlusCache(t *testing.T) {
	e := New(WithIncrementalSnapshots(true), WithSnapshotCache(true))
	col := &Collector{}
	q, err := e.RegisterSource(`
REGISTER QUERY both STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z)
  WITHIN PT1M
  EMIT count(*) AS n
  SNAPSHOT EVERY PT5S
}`, col.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Push(sensorGraph(1, "s1", 1), tick(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(30)); err != nil {
		t.Fatal(err)
	}
	if q.Stats().SkippedByCache == 0 {
		t.Error("cache should fire")
	}
	for _, r := range col.Results {
		if r.Table.Get(0, "n").Int() != 1 {
			t.Errorf("wrong count at %s", r.At)
		}
	}
}
