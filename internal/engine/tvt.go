package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"seraph/internal/eval"
	"seraph/internal/stream"
	"seraph/internal/value"
)

// TimeAnnotated is a time-annotated table T̃_τ (Definition 5.6): a
// table whose records are annotated with the bounds of the window they
// were produced from.
type TimeAnnotated struct {
	Interval stream.Interval
	Table    *eval.Table
}

// TimeVarying is a time-varying table Ψ (Definition 5.7): a function
// from time instants to time-annotated tables, materialized as the
// ordered sequence of tables a continuous query has produced. Append
// enforces the definition's constraints; At implements Ψ(ω) with the
// chronologicality rule (earliest interval containing ω wins).
// TimeVarying is safe for concurrent use: Query.History hands the live
// table to callers that may race with an ongoing AdvanceTo.
type TimeVarying struct {
	mu      sync.RWMutex
	entries []TimeAnnotated

	// limit bounds the number of materialized entries (0 = unlimited);
	// dropped counts entries evicted by the bound. See the engine's
	// WithHistoryRetention option: long-running queries would otherwise
	// grow entries without bound.
	limit   int
	dropped int
}

// setLimit bounds the materialized history to the most recent n entries
// (0 = unlimited). Called at registration time, before any Append.
func (tv *TimeVarying) setLimit(n int) {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	tv.limit = n
}

// Dropped returns how many entries retention has evicted so far.
func (tv *TimeVarying) Dropped() int {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	return tv.dropped
}

// Append adds a time-annotated table. Entries must arrive in
// chronological order of their interval start (monotonicity: subsequent
// time instants map to subsequent tables). When a retention limit is
// set, the oldest entries beyond it are evicted.
func (tv *TimeVarying) Append(ta TimeAnnotated) error {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	if n := len(tv.entries); n > 0 {
		prev := tv.entries[n-1].Interval
		if ta.Interval.Start.Before(prev.Start) {
			return fmt.Errorf("engine: time-varying table violates monotonicity: window starting %s after %s",
				ta.Interval.Start.Format(time.RFC3339), prev.Start.Format(time.RFC3339))
		}
	}
	tv.entries = append(tv.entries, ta)
	if tv.limit > 0 && len(tv.entries) > tv.limit {
		k := len(tv.entries) - tv.limit
		tv.dropped += k
		n := copy(tv.entries, tv.entries[k:])
		// Zero the vacated tail: the backing array is scanned whole by
		// the collector, so stale slots would pin every evicted table
		// (and the dense row chunks they reference) for the query's
		// lifetime.
		for i := n; i < len(tv.entries); i++ {
			tv.entries[i] = TimeAnnotated{}
		}
		tv.entries = tv.entries[:n]
	}
	return nil
}

// compact re-materializes every retained table with exactly-sized
// allocations. Result rows are normally cut from chunked dense arrays
// (eval.DenseBuilder), so a single retained row can pin a whole chunk
// shared with rows long since dropped. A released query keeps its
// history readable but must not pin those arenas (see Query.release).
func (tv *TimeVarying) compact() {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	for i, en := range tv.entries {
		if en.Table == nil || len(en.Table.Rows) == 0 {
			continue
		}
		cells := 0
		for _, row := range en.Table.Rows {
			cells += len(row)
		}
		flat := make([]value.Value, 0, cells)
		rows := make([][]value.Value, len(en.Table.Rows))
		for j, row := range en.Table.Rows {
			start := len(flat)
			flat = append(flat, row...)
			rows[j] = flat[start:len(flat):len(flat)]
		}
		tv.entries[i].Table = &eval.Table{Cols: en.Table.Cols, Rows: rows}
	}
}

// Len returns the number of materialized tables.
func (tv *TimeVarying) Len() int {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	return len(tv.entries)
}

// Entries returns a copy of all materialized tables in order.
func (tv *TimeVarying) Entries() []TimeAnnotated {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	return append([]TimeAnnotated(nil), tv.entries...)
}

// At implements Ψ(ω): the time-annotated table with the earliest
// (minimal) opening timestamp whose interval contains ω (consistency +
// chronologicality constraints of Definition 5.7). ok is false when no
// table is defined at ω — including instants older than the retention
// horizon when a limit is set.
//
// Entries come from a fixed-width window grid, so both interval starts
// (the Append invariant) and ends are non-decreasing: the earliest
// interval containing ω is found by binary search on the end bound
// instead of the linear scan this method used to be, which matters for
// long-running queries whose history holds thousands of tables.
func (tv *TimeVarying) At(ω time.Time) (TimeAnnotated, bool) {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	// First entry whose interval does not lie entirely before ω.
	i := sort.Search(len(tv.entries), func(i int) bool {
		iv := tv.entries[i].Interval
		return ω.Before(iv.End) || (ω.Equal(iv.End) && iv.IncludeEnd)
	})
	// Among the remaining entries, starts are non-decreasing, so the
	// scan below terminates as soon as a start passes ω — for a window
	// grid that is at most a couple of iterations.
	for ; i < len(tv.entries); i++ {
		iv := tv.entries[i].Interval
		if iv.Start.After(ω) {
			break
		}
		if iv.Contains(ω) {
			return tv.entries[i], true
		}
	}
	return TimeAnnotated{}, false
}
