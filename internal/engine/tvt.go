package engine

import (
	"fmt"
	"sync"
	"time"

	"seraph/internal/eval"
	"seraph/internal/stream"
)

// TimeAnnotated is a time-annotated table T̃_τ (Definition 5.6): a
// table whose records are annotated with the bounds of the window they
// were produced from.
type TimeAnnotated struct {
	Interval stream.Interval
	Table    *eval.Table
}

// TimeVarying is a time-varying table Ψ (Definition 5.7): a function
// from time instants to time-annotated tables, materialized as the
// ordered sequence of tables a continuous query has produced. Append
// enforces the definition's constraints; At implements Ψ(ω) with the
// chronologicality rule (earliest interval containing ω wins).
// TimeVarying is safe for concurrent use: Query.History hands the live
// table to callers that may race with an ongoing AdvanceTo.
type TimeVarying struct {
	mu      sync.RWMutex
	entries []TimeAnnotated
}

// Append adds a time-annotated table. Entries must arrive in
// chronological order of their interval start (monotonicity: subsequent
// time instants map to subsequent tables).
func (tv *TimeVarying) Append(ta TimeAnnotated) error {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	if n := len(tv.entries); n > 0 {
		prev := tv.entries[n-1].Interval
		if ta.Interval.Start.Before(prev.Start) {
			return fmt.Errorf("engine: time-varying table violates monotonicity: window starting %s after %s",
				ta.Interval.Start.Format(time.RFC3339), prev.Start.Format(time.RFC3339))
		}
	}
	tv.entries = append(tv.entries, ta)
	return nil
}

// Len returns the number of materialized tables.
func (tv *TimeVarying) Len() int {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	return len(tv.entries)
}

// Entries returns a copy of all materialized tables in order.
func (tv *TimeVarying) Entries() []TimeAnnotated {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	return append([]TimeAnnotated(nil), tv.entries...)
}

// At implements Ψ(ω): the time-annotated table with the earliest
// (minimal) opening timestamp whose interval contains ω (consistency +
// chronologicality constraints of Definition 5.7). ok is false when no
// table is defined at ω.
func (tv *TimeVarying) At(ω time.Time) (TimeAnnotated, bool) {
	tv.mu.RLock()
	defer tv.mu.RUnlock()
	for _, ta := range tv.entries {
		if ta.Interval.Contains(ω) {
			return ta, true
		}
	}
	return TimeAnnotated{}, false
}
