package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seraph/internal/window"
)

// pushTick pushes one sensor reading and advances the clock.
func pushTick(t *testing.T, e *Engine, relID int64, at int, v int64) {
	t.Helper()
	if err := e.Push(sensorGraph(relID, "s1", v), tick(at)); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(tick(at)); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsConflictingOptions: restoring under explicit
// options that contradict the checkpoint's configuration must fail
// with a descriptive error instead of silently changing semantics.
func TestRestoreRejectsConflictingOptions(t *testing.T) {
	e := New() // delta off, cache off, paper-example bounds
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Option
		want string // "" means the restore must succeed
	}{
		{"delta-on-vs-off", WithDeltaEval(true), "delta evaluation"},
		{"shared-on-vs-off", WithSharedEval(true), "shared evaluation"},
		{"cache-on-vs-off", WithSnapshotCache(true), "snapshot cache"},
		{"bounds-strict-vs-paper", WithBounds(window.BoundsStrict), "window bounds"},
		{"incremental-on-vs-off", WithIncrementalSnapshots(true), "incremental snapshots"},
		{"matching-explicit", WithDeltaEval(false), ""},
		{"matching-bounds", WithBounds(window.BoundsPaperExample), ""},
		{"uncarried-option", WithHistoryRetention(5), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Restore(bytes.NewReader(buf.Bytes()), nil, tc.opt)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("restore with compatible option failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("restore with conflicting option succeeded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the conflicting %q setting", err, tc.want)
			}
		})
	}

	// The converse direction: a delta-mode checkpoint refuses an
	// explicit non-delta restore (and its implied incremental state).
	ed := New(WithDeltaEval(true))
	if _, err := ed.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ed.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes()), nil, WithDeltaEval(false)); err == nil {
		t.Fatal("non-delta restore of a delta checkpoint succeeded")
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes()), nil, WithDeltaEval(true)); err != nil {
		t.Fatalf("matching delta restore failed: %v", err)
	}
}

// TestCheckpointerSaveRecover: a full + delta chain recovers to an
// engine whose subsequent emissions match an uninterrupted run, and the
// manifest round-trips the caller's stream offsets.
func TestCheckpointerSaveRecover(t *testing.T) {
	// Reference: uninterrupted run over the whole schedule.
	ref := &Collector{}
	re := New()
	if _, err := re.RegisterSource(strings.Replace(sensorQuery, "%s", "ON ENTERING", 1), ref.Sink()); err != nil {
		t.Fatal(err)
	}
	vals := []int64{41, 50, 20, 60, 70, 45, 30, 55}
	for i, v := range vals {
		pushTick(t, re, int64(1000+i), i*5, v)
	}

	dir := t.TempDir()
	e := New()
	col1 := &Collector{}
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "ON ENTERING", 1), col1.Sink()); err != nil {
		t.Fatal(err)
	}
	ck, err := e.NewCheckpointer(dir, WithFullEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals[:5] {
		pushTick(t, e, int64(1000+i), i*5, v)
		if err := ck.Save(map[string][]int64{"events": {int64(i + 1)}}); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if ck.Seq() != 5 {
		t.Fatalf("Seq = %d, want 5", ck.Seq())
	}
	files, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	var haveFull, haveDelta bool
	for _, f := range files {
		haveFull = haveFull || strings.HasSuffix(f, "-full.json")
		haveDelta = haveDelta || strings.HasSuffix(f, "-delta.json")
	}
	if !haveFull || !haveDelta {
		t.Fatalf("checkpoint files %v: want both full and delta", files)
	}

	// Crash here: recover from disk and play the rest of the schedule.
	col2 := &Collector{}
	e2, info, err := Recover(dir, func(string) Sink { return col2.Sink() })
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 5 {
		t.Errorf("recovered Seq = %d, want 5", info.Seq)
	}
	if got := info.Offsets["events"]; len(got) != 1 || got[0] != 5 {
		t.Errorf("recovered offsets = %v, want [5]", info.Offsets)
	}
	if info.Duration <= 0 {
		t.Error("recovery duration not measured")
	}
	for i, v := range vals[5:] {
		pushTick(t, e2, int64(1005+i), (5+i)*5, v)
	}

	combined := append(append([]Result(nil), col1.Results...), col2.Results...)
	if len(combined) != len(ref.Results) {
		t.Fatalf("evaluations: %d recovered vs %d reference", len(combined), len(ref.Results))
	}
	for i := range ref.Results {
		if !ref.Results[i].At.Equal(combined[i].At) {
			t.Fatalf("instant %d: %s vs %s", i, ref.Results[i].At, combined[i].At)
		}
		if !sameBag(ref.Results[i].Table, combined[i].Table) {
			t.Errorf("tables differ at %s:\nref:\n%s\nrecovered:\n%s",
				ref.Results[i].At.Format("15:04:05"), ref.Results[i].Table, combined[i].Table)
		}
	}
}

// TestRecoverNoCheckpoint: an empty directory is a typed miss, not an
// error to retry.
func TestRecoverNoCheckpoint(t *testing.T) {
	_, _, err := Recover(t.TempDir(), nil)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// TestRecoverIgnoresOrphans: checkpoint files a torn Save abandoned
// (unreferenced cp files, .tmp litter) must not confuse Recover, and
// the next Save's retention sweep removes them.
func TestRecoverIgnoresOrphans(t *testing.T) {
	dir := t.TempDir()
	e := New()
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	ck, err := e.NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	pushTick(t, e, 1000, 0, 41)
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}
	// Orphans: a bogus unreferenced checkpoint (as if a crash hit
	// between file write and manifest write) and tmp litter from a torn
	// atomic write.
	orphan := filepath.Join(dir, "cp-999999-full.json")
	if err := os.WriteFile(orphan, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cp-000009-full.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, nil); err != nil {
		t.Fatalf("recover with orphans present: %v", err)
	}
	pushTick(t, e, 1001, 5, 50)
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Error("unreferenced orphan checkpoint survived the retention sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "cp-000009-full.json.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Error("tmp litter survived the retention sweep")
	}
}

// TestCheckpointerRetention: the directory stays bounded at the
// current chain plus one previous chain regardless of how many saves
// run.
func TestCheckpointerRetention(t *testing.T) {
	dir := t.TempDir()
	e := New()
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	ck, err := e.NewCheckpointer(dir, WithFullEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		pushTick(t, e, int64(1000+i), i*5, int64(41+i))
		if err := ck.Save(nil); err != nil {
			t.Fatal(err)
		}
		files, err := Checkpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Max: current chain (1 full + 2 deltas) + previous chain (3).
		if len(files) > 6 {
			t.Fatalf("save %d: %d checkpoint files retained (%v)", i, len(files), files)
		}
	}
	// Recovery still works from the retained tail.
	if _, info, err := Recover(dir, nil); err != nil || info.Seq != 12 {
		t.Fatalf("recover after retention: info=%+v err=%v", info, err)
	}
}

// TestCheckpointerResumesChainAcrossRestart: a new Checkpointer over an
// existing directory continues the delta chain instead of forgetting
// the watermarks and re-writing history.
func TestCheckpointerResumesChainAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e := New()
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	ck, err := e.NewCheckpointer(dir, WithFullEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	pushTick(t, e, 1000, 0, 41)
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover the engine, open a fresh Checkpointer on the
	// same directory, keep going.
	e2, info, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := e2.NewCheckpointer(dir, WithFullEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Seq() != info.Seq {
		t.Fatalf("resumed Seq = %d, want %d", ck2.Seq(), info.Seq)
	}
	pushTick(t, e2, 1001, 5, 50)
	if err := ck2.Save(nil); err != nil {
		t.Fatal(err)
	}
	files, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Save 2 under fullEvery=4 must be a delta continuing save 1's full.
	if len(files) != 2 || !strings.HasSuffix(files[1], "-delta.json") {
		t.Fatalf("files after resumed save: %v, want full+delta", files)
	}
	if _, info2, err := Recover(dir, nil); err != nil || info2.Seq != 2 || info2.Deltas != 1 {
		t.Fatalf("recover resumed chain: info=%+v err=%v", info2, err)
	}
}

// deltaEquivQueries exercises the three maintained-state rebuild paths:
// plain provenance-indexed matches, order-statistic (treap) top-k, and
// grouped removable aggregates.
var deltaEquivQueries = []string{
	`REGISTER QUERY plain STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT20S WHERE r.v > 30
  EMIT s.name AS sensor, r.v AS v SNAPSHOT EVERY PT5S }`,
	`REGISTER QUERY topk STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT20S
  EMIT s.name AS sensor, r.v AS v ORDER BY v DESC LIMIT 2 SNAPSHOT EVERY PT5S }`,
	`REGISTER QUERY agg STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT20S
  EMIT s.name AS sensor, count(*) AS n ON ENTERING EVERY PT5S }`,
}

// TestRecoverDeltaStateEquivalence: after Recover, a delta-mode
// engine's rebuilt maintained state (match sets, provenance index,
// order-statistic sizes, aggregate groups) is structurally identical to
// the pre-crash engine's, not just behaviourally similar.
func TestRecoverDeltaStateEquivalence(t *testing.T) {
	dir := t.TempDir()
	// Bypass off on both sides: the churn guard is a performance knob a
	// checkpoint does not carry, and a bypassed round keeps no
	// maintained state to compare.
	e := New(WithDeltaEval(true), WithDeltaBypassRatio(0))
	for _, src := range deltaEquivQueries {
		if _, err := e.RegisterSource(src, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range []int64{41, 25, 60, 35, 50} {
		pushTick(t, e, int64(1000+i), i*5, v)
	}
	ck, err := e.NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}

	e2, _, err := Recover(dir, nil, WithDeltaBypassRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plain", "topk", "agg"} {
		orig, rec := e.queries[name], e2.queries[name]
		if orig == nil || rec == nil {
			t.Fatalf("query %q missing (orig=%v rec=%v)", name, orig != nil, rec != nil)
		}
		od, rd := orig.delta, rec.delta
		if od == nil || rd == nil {
			t.Fatalf("query %q: delta state missing (orig=%v rec=%v)", name, od != nil, rd != nil)
		}
		if od.failed || rd.failed {
			t.Fatalf("query %q: delta maintenance failed (orig=%v rec=%v)", name, od.failed, rd.failed)
		}
		if len(od.matches) != len(rd.matches) {
			t.Errorf("query %q: %d live matches recovered, want %d", name, len(rd.matches), len(od.matches))
		}
		for key := range od.matches {
			if _, ok := rd.matches[key]; !ok {
				t.Errorf("query %q: match %q lost in recovery", name, key)
			}
		}
		if len(od.prov) != len(rd.prov) {
			t.Errorf("query %q: provenance index has %d seeds, want %d", name, len(rd.prov), len(od.prov))
		}
		os0, rs0 := od.subs[0], rd.subs[0]
		if (os0.ord == nil) != (rs0.ord == nil) {
			t.Fatalf("query %q: order-statistic presence differs", name)
		}
		if os0.ord != nil && os0.ord.Len() != rs0.ord.Len() {
			t.Errorf("query %q: order-statistic treap holds %d rows, want %d", name, rs0.ord.Len(), os0.ord.Len())
		}
		if len(os0.groups) != len(rs0.groups) {
			t.Errorf("query %q: %d aggregate groups recovered, want %d", name, len(rs0.groups), len(os0.groups))
		}
	}

	// And the rebuilt state keeps producing oracle-identical results.
	col, col2 := map[string]*Collector{}, map[string]*Collector{}
	for _, name := range []string{"plain", "topk", "agg"} {
		col[name], col2[name] = &Collector{}, &Collector{}
		e.queries[name].sink = col[name].Sink()
		e2.queries[name].sink = col2[name].Sink()
	}
	for i, v := range []int64{20, 65, 45} {
		pushTick(t, e, int64(2000+i), 25+i*5, v)
		pushTick(t, e2, int64(2000+i), 25+i*5, v)
	}
	for _, name := range []string{"plain", "topk", "agg"} {
		a, b := col[name].Results, col2[name].Results
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d post-recovery results", name, len(a), len(b))
		}
		for i := range a {
			if !sameBag(a[i].Table, b[i].Table) {
				t.Errorf("query %q diverges at %s:\norig:\n%s\nrecovered:\n%s",
					name, a[i].At.Format("15:04:05"), a[i].Table, b[i].Table)
			}
		}
	}
}

// TestRecoverSharedGroupEquivalence: multi-query groups re-form after
// recovery with the same membership. With the sharing hierarchy on
// (the default) a query registered mid-stream merges into the running
// generation and recovery reunites all members on one chassis; with
// the hierarchy off the later generation stays in its own group
// exactly as before the crash — and the off switch itself round-trips
// through the checkpoint.
func TestRecoverSharedGroupEquivalence(t *testing.T) {
	mk := func(name string) string {
		return `REGISTER QUERY ` + name + ` STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT20S WHERE r.v > 30
  EMIT s.name AS sensor, r.v AS v SNAPSHOT EVERY PT5S }`
	}
	for _, tc := range []struct {
		name string
		opts []Option
		sets []string // expected member sets, before and after recovery
	}{
		{"hierarchical", []Option{WithSharedEval(true)}, []string{"qa,qb,qc"}},
		{"equality_only", []Option{WithSharedEval(true), WithSharedHierarchy(false)},
			[]string{"qa,qb", "qc"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			e := New(tc.opts...)
			for _, n := range []string{"qa", "qb"} {
				if _, err := e.RegisterSource(mk(n), nil); err != nil {
					t.Fatal(err)
				}
			}
			pushTick(t, e, 1000, 0, 41)
			pushTick(t, e, 1001, 5, 55)
			// qc arrives mid-stream: same fingerprint, started chassis.
			// Hierarchy on: merges into qa/qb's generation. Off: a later
			// generation whose window history differs from the chassis.
			if _, err := e.RegisterSource(mk("qc"), nil); err != nil {
				t.Fatal(err)
			}
			pushTick(t, e, 1002, 10, 60)

			groupsOf := func(eng *Engine) map[string][]string {
				out := map[string][]string{}
				for _, g := range eng.groupList {
					var members []string
					for _, m := range g.members {
						members = append(members, m.name)
					}
					out[g.chassis.name] = members
				}
				return out
			}
			before := groupsOf(e)

			ck, err := e.NewCheckpointer(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := ck.Save(nil); err != nil {
				t.Fatal(err)
			}
			e2, _, err := Recover(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			after := groupsOf(e2)
			if len(before) != len(tc.sets) || len(after) != len(tc.sets) {
				t.Fatalf("group count: before %d, after %d, want %d (%v vs %v)",
					len(before), len(after), len(tc.sets), before, after)
			}
			memberSets := func(groups map[string][]string) map[string]int {
				sets := map[string]int{}
				for _, ms := range groups {
					sets[strings.Join(ms, ",")]++
				}
				return sets
			}
			bs, as := memberSets(before), memberSets(after)
			for _, set := range tc.sets {
				if bs[set] != 1 || as[set] != 1 {
					t.Errorf("member set {%s}: before=%v after=%v", set, before, after)
				}
			}

			// Post-recovery emissions match the surviving original.
			colA, colB := &Collector{}, &Collector{}
			e.queries["qc"].sink = colA.Sink()
			e2.queries["qc"].sink = colB.Sink()
			pushTick(t, e, 1003, 15, 70)
			pushTick(t, e2, 1003, 15, 70)
			if len(colA.Results) == 0 || len(colA.Results) != len(colB.Results) {
				t.Fatalf("post-recovery results: %d vs %d", len(colA.Results), len(colB.Results))
			}
			for i := range colA.Results {
				if !sameBag(colA.Results[i].Table, colB.Results[i].Table) {
					t.Errorf("qc diverges at %s", colA.Results[i].At.Format("15:04:05"))
				}
			}
		})
	}
}

// TestDeltaCheckpointSmallerThanFull: the point of the incremental
// chain — a delta written right after a full must not re-serialize the
// window.
func TestDeltaCheckpointSmallerThanFull(t *testing.T) {
	dir := t.TempDir()
	e := New()
	if _, err := e.RegisterSource(strings.Replace(sensorQuery, "%s", "SNAPSHOT", 1), nil); err != nil {
		t.Fatal(err)
	}
	// Many elements in the window, all before the full checkpoint.
	for i := 0; i < 50; i++ {
		if err := e.Push(sensorGraph(int64(1000+i), "s1", int64(41+i%10)), tick(0).Add(time.Duration(i)*50*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTo(tick(5)); err != nil {
		t.Fatal(err)
	}
	ck, err := e.NewCheckpointer(dir, WithFullEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}
	// One new element, then a delta.
	pushTick(t, e, 2000, 6, 44)
	if err := ck.Save(nil); err != nil {
		t.Fatal(err)
	}
	files, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	var fullSize, deltaSize int64
	for _, f := range files {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(f, "-full.json") {
			fullSize = st.Size()
		} else {
			deltaSize = st.Size()
		}
	}
	if fullSize == 0 || deltaSize == 0 {
		t.Fatalf("missing checkpoint files: %v", files)
	}
	if deltaSize*4 > fullSize {
		t.Errorf("delta checkpoint (%d bytes) not meaningfully smaller than full (%d bytes)", deltaSize, fullSize)
	}
	// The chain still recovers the whole window.
	e2, _, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e2.queries["hot"].hist.Elements(), e.queries["hot"].hist.Elements(); len(got) != len(want) {
		t.Errorf("recovered window holds %d elements, want %d", len(got), len(want))
	}
}
