package engine

// sharedeval.go is the multi-query optimization (MQO) layer
// (WithSharedEval): registered queries whose MATCH / WITHIN / core
// WHERE agree after canonicalization (see internal/ast/canon.go) join a
// shared evaluation group, so per-instant cost grows with the number of
// *distinct* (pattern, window grid, stream) groups instead of the
// number of registered queries.
//
// Each group owns a chassis — an internal *Query (named "mqo:gN", never
// in the registry map) whose body is the canonical MATCH plus a
// projection of the canonical pattern variables. The scheduler
// dispatches the chassis as the unit of evaluation: one instant
// evaluates the shared pattern once (full mode through computeResult,
// delta mode through one provenance index and one seeded-match pass in
// deltaeval.go), then fans the binding rows out to every member through
// its bridge WITH (residual predicate + variable renaming), remaining
// clauses, and stream operator. Sinks observe exactly the results an
// unshared engine would produce, in member-name order per instant.
//
// Group membership is decided at Register time. Delta-maintained
// groups are frozen per generation: a query may join only while the
// group's chassis has neither evaluated an instant nor buffered a
// stream element; a late arrival with an equal fingerprint starts a new
// generation (a fresh chassis) under the same key.
//
// Full-mode groups participate in the sharing *hierarchy*
// (hierarchy.go, WithSharedHierarchy), which adds three partial-sharing
// mechanisms on top of fingerprint equality:
//
//   - cross-window-width super-groups: width-safe queries (see
//     ast.CanonQuery.WidthSafe) group on a width-agnostic key; the
//     chassis maintains the widest member window and each narrower
//     member's bindings are derived by re-validating the wide rows
//     against the narrow store;
//   - subpattern seeding: when one group's canonical pattern is a
//     strict sub-pattern of another's (ast.SubpatternOf), the child's
//     per-instant evaluation is seeded from the parent's binding table
//     instead of matching from scratch;
//   - late-join backfill: a compatible late registrant merges into the
//     running generation — it adopts the chassis history (t0 semantics)
//     and one catch-up evaluation rebuilds its previous result so ON
//     ENTERING / ON EXITING diffs continue exactly as if it had been
//     registered at t0 and replayed.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"seraph/internal/ast"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/pg"
	"seraph/internal/stream"
	"seraph/internal/symtab"
	"seraph/internal/value"
)

// WithSharedEval enables multi-query optimization: queries with equal
// canonical fingerprints (and equal window grid and stream) share one
// pattern evaluation per instant. Result bags per query are identical
// to unshared evaluation; only the cost model changes.
func WithSharedEval(on bool) Option {
	return func(e *Engine) { e.sharedEval = on; e.optsSet.shared = true }
}

// sharedGroup is one shared evaluation group. members, started, parent,
// pmap and merged are guarded by the engine lock; the chassis carries
// the group's evaluation state under its own locks like any query; the
// full-binding cache has its own leaf lock (fullMu).
type sharedGroup struct {
	e       *Engine
	key     string // fingerprint | stream | start | width | slide | delta
	fp      string // canonical fingerprint (for introspection)
	id      string // chassis name, "mqo:gN"
	chassis *Query
	members []*Query
	started bool // an instant was dispatched; the generation is frozen
	deltaOK bool // every member's rewritten body is delta-maintainable

	// Hierarchy state (see hierarchy.go). canon is the canonical
	// decomposition the chassis was built from; chMatch is the chassis
	// body's own Match clause (a copy, so widening its WITHIN never
	// mutates a member's canon). gen numbers generations under key.
	canon     *ast.CanonQuery
	chMatch   *ast.Match
	widthSafe bool // key is width-agnostic; chassis holds the widest window
	gen       int
	merged    int // late registrants merged into this generation

	// parent, when non-nil, is a group whose canonical pattern is a
	// strict sub-pattern of this one; pmap is the part/variable
	// correspondence. Seeding from it is opportunistic per instant.
	parent *sharedGroup
	pmap   *ast.SubpatternMap

	// fullMu guards the last shared-full binding table, kept for
	// subpattern seeding of child groups and late-join catch-up.
	fullMu     sync.Mutex
	lastFull   *eval.Table
	lastFullAt time.Time
	lastFullIv stream.Interval
}

// setLastFull publishes the group's shared-full binding table at ω.
func (g *sharedGroup) setLastFull(t *eval.Table, iv stream.Interval, ω time.Time) {
	g.fullMu.Lock()
	g.lastFull, g.lastFullIv, g.lastFullAt = t, iv, ω
	g.fullMu.Unlock()
}

// joinSharedGroup canonicalizes a freshly registered query and attaches
// it to a shared group, creating a new generation when none is
// joinable. Caller holds e.mu; q is already in the registry.
func (e *Engine) joinSharedGroup(q *Query) {
	defer e.sched.symtabSize.Set(int64(symtab.Len()))
	cq, ok := ast.Canonicalize(q.reg.Body)
	if !ok {
		return
	}
	var prog *eval.DeltaProgram
	deltaOK := false
	if e.deltaEval {
		// Partition groups by delta-maintainability so one member
		// outside the fragment cannot drag delta-capable queries
		// into shared-full evaluation.
		prog = eval.CompileDelta(cq.Rewritten)
		deltaOK = prog != nil
	}
	q.canon = cq
	q.canonProg = prog
	widthSafe := e.sharedHier && cq.WidthSafe && !deltaOK
	key := sharedGroupKey(cq, q, deltaOK, widthSafe)
	g := e.groups[key]
	if g != nil && (g.started || g.chassis.hist.Len() > 0) {
		// Running generation. Delta groups stay frozen (a new chassis
		// under the same key); full-mode groups merge the late
		// registrant when the hierarchy is on and its window fits the
		// chassis (hierarchy.go — the member adopts the chassis
		// history and backfills its diff baseline at the next instant).
		if e.sharedHier && !deltaOK && e.mergeLateMember(g, q) {
			return
		}
		g = nil
	}
	if g == nil {
		g = e.newSharedGroup(key, q, cq, deltaOK, widthSafe)
		if e.groups == nil {
			e.groups = map[string]*sharedGroup{}
		}
		e.groups[key] = g
		e.groupList = append(e.groupList, g)
		e.linkSubpattern(g)
	} else if widthSafe && q.cfg.Width > g.chassis.cfg.Width {
		// Pre-start width super-group join by a wider member: the
		// chassis adopts the widest window (narrower members derive).
		e.widenChassis(g, q.cfg.Width)
	}
	q.memberOf = g
	g.members = append(g.members, q)
	e.sched.mqoGroups.Set(int64(len(e.groupList)))
}

// sharedGroupKey extends the canonical fingerprint with everything else
// two queries must agree on to evaluate as one unit: stream binding,
// window grid (start, width, slide), and delta-maintainability. A
// width-safe hierarchical group drops the width components (base
// fingerprint, width=*): queries differing only in window width share
// one super-group whose chassis maintains the widest window.
func sharedGroupKey(cq *ast.CanonQuery, q *Query, deltaOK, widthSafe bool) string {
	start := "now-pending"
	if !q.pendingStart {
		start = q.cfg.Start.Format(time.RFC3339Nano)
	}
	fp, width := cq.Fingerprint, q.cfg.Width.String()
	if widthSafe {
		fp, width = cq.BaseFingerprint, "*"
	}
	return fmt.Sprintf("%s|stream=%s|start=%s|width=%s|slide=%s|delta=%t",
		fp, q.streamName, start, width, q.cfg.Slide, deltaOK)
}

// newSharedGroup creates a generation's chassis from its first member:
// same stream, same window grid, body = canonical MATCH + projection of
// the canonical pattern variables (the shared binding table's columns).
// The chassis gets its own copy of the Match clause so a width
// super-group can widen its WITHIN without mutating member state.
func (e *Engine) newSharedGroup(key string, q *Query, cq *ast.CanonQuery, deltaOK, widthSafe bool) *sharedGroup {
	e.groupSeq++
	id := fmt.Sprintf("mqo:g%d", e.groupSeq)
	items := make([]ast.ReturnItem, 0, len(cq.Vars))
	for _, v := range cq.Vars {
		items = append(items, ast.ReturnItem{X: &ast.Var{Name: v}, Alias: v})
	}
	chMatch := *cq.Match
	body := &ast.Query{Parts: []*ast.SingleQuery{{Clauses: []ast.Clause{
		&chMatch,
		&ast.Return{Projection: ast.Projection{Items: items}},
	}}}}
	ch := &Query{
		name: id,
		reg:  &ast.Registration{Name: id, StartAt: q.cfg.Start, StartNow: q.pendingStart, Body: body},
		// A non-nil emit keeps the chassis evaluating every slide (a nil
		// emit means "single result then done" to the scheduler). The
		// operator is irrelevant: members apply their own.
		emit:         &ast.Emit{Op: ast.OpSnapshot, Every: q.cfg.Slide},
		cfg:          q.cfg,
		hist:         stream.New(),
		params:       nil,
		streamName:   q.streamName,
		pendingStart: q.pendingStart,
		nextEval:     q.nextEval,
		evalTarget:   q.evalTarget,
		qm:           newQueryMetrics(e.metrics, id),
	}
	if e.groupGen == nil {
		e.groupGen = map[string]int{}
	}
	e.groupGen[key]++
	g := &sharedGroup{
		e: e, key: key, fp: cq.Fingerprint, id: id, chassis: ch,
		deltaOK: deltaOK, canon: cq, chMatch: &chMatch,
		widthSafe: widthSafe, gen: e.groupGen[key],
	}
	ch.group = g
	return g
}

// GroupMember describes one member of a shared evaluation group: its
// window width, its evaluation watermark (the next instant it expects),
// and whether it merged into a running generation after registration.
type GroupMember struct {
	Name       string    `json:"name"`
	Width      string    `json:"width"`
	NextEval   time.Time `json:"next_eval"`
	LateJoined bool      `json:"late_joined,omitempty"`
}

// GroupInfo describes one shared evaluation group (see SharedGroups).
type GroupInfo struct {
	ID          string        `json:"id"`
	Fingerprint string        `json:"fingerprint"`
	Stream      string        `json:"stream,omitempty"`
	Members     []string      `json:"members"`
	MemberInfo  []GroupMember `json:"member_info,omitempty"`
	DeltaShared bool          `json:"delta_shared"`
	Started     bool          `json:"started"`

	// Hierarchy structure: Generation numbers this chassis under its
	// group key, Generations counts the live generations of the key (a
	// late joiner that could not merge spawns a parallel generation),
	// MergedLateJoins counts registrants merged into this running
	// generation. Width is the chassis window; WidthShared marks a
	// width-agnostic super-group. Parent/Children are the subpattern
	// seeding edges between groups.
	Generation      int      `json:"generation"`
	Generations     int      `json:"generations"`
	MergedLateJoins int      `json:"merged_late_joins,omitempty"`
	Width           string   `json:"width"`
	WidthShared     bool     `json:"width_shared,omitempty"`
	Parent          string   `json:"parent,omitempty"`
	Children        []string `json:"children,omitempty"`
}

// SharedGroups returns the live shared evaluation groups sorted by id.
func (e *Engine) SharedGroups() []GroupInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	gens := map[string]int{}
	for _, g := range e.groupList {
		gens[g.key]++
	}
	out := make([]GroupInfo, 0, len(e.groupList))
	for _, g := range e.groupList {
		gi := GroupInfo{
			ID:              g.id,
			Fingerprint:     g.fp,
			Stream:          g.chassis.streamName,
			DeltaShared:     g.deltaOK,
			Started:         g.started,
			Generation:      g.gen,
			Generations:     gens[g.key],
			MergedLateJoins: g.merged,
			Width:           g.chassis.cfg.Width.String(),
			WidthShared:     g.widthSafe,
		}
		if g.parent != nil {
			gi.Parent = g.parent.id
		}
		for _, h := range e.groupList {
			if h.parent == g {
				gi.Children = append(gi.Children, h.id)
			}
		}
		sort.Strings(gi.Children)
		for _, m := range g.members {
			gi.Members = append(gi.Members, m.name)
			m.mu.Lock()
			gi.MemberInfo = append(gi.MemberInfo, GroupMember{
				Name:       m.name,
				Width:      m.cfg.Width.String(),
				NextEval:   m.nextEval,
				LateJoined: m.lateJoin,
			})
			m.mu.Unlock()
		}
		sort.Strings(gi.Members)
		sort.Slice(gi.MemberInfo, func(i, j int) bool { return gi.MemberInfo[i].Name < gi.MemberInfo[j].Name })
		out = append(out, gi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SharedGroup returns the id and current size of the shared evaluation
// group this query evaluates in ("", 0 when it evaluates unshared).
func (q *Query) SharedGroup() (string, int) {
	g := q.memberOf
	if g == nil {
		return "", 0
	}
	g.e.mu.Lock()
	defer g.e.mu.Unlock()
	return g.id, len(g.members)
}

// release drops a deregistered query's evaluation state: the delta-eval
// maintained structures (provenance index, order-stat treaps, distance
// maps, parked bypass state), rolling snapshots, previous-result
// tables, and buffered stream history. The query keeps answering
// read-only introspection (Stats, History) but never evaluates again.
func (q *Query) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.done = true
	if q.delta != nil {
		q.delta.releaseMaintained()
		q.delta = nil
	}
	q.rollers = nil
	q.prev = nil
	q.prevCached = nil
	q.prevElems = ""
	// History stays readable, but its rows were cut from shared dense
	// chunks; copy them out so they stop pinning the arenas.
	q.history.compact()
	// Drop every buffered element (DropBefore far future) rather than
	// swapping the stream pointer, which concurrent readers hold.
	q.hist.DropBefore(time.Unix(0, 1<<62))
}

// memberResult pairs a member's produced Result with its sink so
// evalGroupNext can deliver after all locks are released.
type memberResult struct {
	sink Sink
	res  *Result
}

// evalGroupNext runs the single earliest due instant of a group's
// chassis: one shared evaluation, fanned out to every live member, then
// every member sink invoked (member-name order, no locks held). The
// caller must hold the chassis evalMu. Member-level failures (residual
// or projection errors) fail only that member; a shared failure
// (pattern evaluation itself) fails the chassis and every member.
func (e *Engine) evalGroupNext(ch *Query) error {
	g := ch.group
	e.mu.Lock()
	members := append([]*Query(nil), g.members...)
	parent, pmap := g.parent, g.pmap
	e.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })

	ch.mu.Lock()
	if ch.done || ch.pendingStart || ch.nextEval.After(ch.evalTarget) {
		ch.chainStart = time.Time{}
		ch.mu.Unlock()
		return nil
	}
	ω := ch.nextEval
	if ch.chainStart.IsZero() {
		ch.chainStart = e.wallNow()
	}
	if e.shedDue(ch, ω) {
		iv, _ := ch.cfg.ActiveWindow(ω)
		ch.stats.Shed++
		ch.qm.shed.Inc()
		ch.nextEval = ω.Add(ch.cfg.Slide)
		ch.hist.DropBefore(ch.cfg.RetentionHorizon(ω))
		ch.mu.Unlock()
		if e.logger != nil {
			e.logger.Warn("seraph: shed shared group instant", "group", ch.name, "at", ω)
		}
		for _, m := range members {
			m.mu.Lock()
			skip := m.done
			if !skip {
				m.stats.Shed++
				m.nextEval = ω.Add(m.cfg.Slide)
			}
			m.mu.Unlock()
			if skip {
				continue
			}
			m.qm.shed.Inc()
			if m.sink != nil {
				m.sink(Result{Query: m.name, At: ω, Window: iv, Table: &eval.Table{}, Skipped: true})
			}
		}
		return nil
	}

	results, memberErrs, err := e.evaluateGroup(ch, g, members, parent, pmap, ω)
	e.sched.instants.Inc()
	if err != nil {
		err = fmt.Errorf("engine: shared group %q at %s: %w",
			ch.name, ω.Format(time.RFC3339), err)
		ch.failErr = err
		ch.done = true
		ch.qm.failures.Inc()
		ch.mu.Unlock()
		if e.logger != nil {
			e.logger.Error("seraph: shared group failed", "group", ch.name, "at", ω, "err", err)
		}
		for _, m := range members {
			m.mu.Lock()
			if !m.done {
				m.failErr = err
				m.done = true
				m.qm.failures.Inc()
			}
			m.mu.Unlock()
		}
		return err
	}
	ch.nextEval = ω.Add(ch.cfg.Slide)
	ch.hist.DropBefore(ch.cfg.RetentionHorizon(ω))
	if ch.nextEval.After(ch.evalTarget) {
		ch.chainStart = time.Time{}
	}
	// Mirror the advance onto every member (their nextEval drives
	// checkpointing and backlog accounting) and retire the chassis once
	// every member is done.
	allDone := true
	for _, m := range members {
		m.mu.Lock()
		if !m.done {
			m.nextEval = ω.Add(m.cfg.Slide)
			allDone = false
		}
		m.mu.Unlock()
	}
	if allDone {
		ch.done = true
	}
	ch.mu.Unlock()
	for _, r := range results {
		if r.sink != nil && r.res != nil {
			r.sink(*r.res)
		}
	}
	return errors.Join(memberErrs...)
}

// evaluateGroup runs one shared evaluation at instant ω and fans it out.
// The shared delta path is tried first (group generations keyed deltaOK
// compile every member); otherwise the canonical pattern is evaluated
// once through computeResult and each member's remaining clauses run
// over the shared binding table. The caller must hold ch.mu. The
// returned error is a shared failure; member-level failures are
// recorded on the member and returned in memberErrs.
func (e *Engine) evaluateGroup(ch *Query, g *sharedGroup, members []*Query, parent *sharedGroup, pmap *ast.SubpatternMap, ω time.Time) ([]memberResult, []error, error) {
	start := time.Now()

	if e.deltaEval && g.deltaOK {
		if ds := e.ensureGroupDelta(ch, g, members); !ds.failed {
			outs, iv, nodes, rels, ok, err := e.groupDeltaAdvance(ch, ds, ω)
			if err != nil {
				return nil, nil, err
			}
			if !ds.failed {
				if !ok {
					return nil, nil, nil // no window contains ω
				}
				if ds.lastBypassed {
					ch.stats.DeltaBypasses++
					ch.qm.deltaBypass.Inc()
				} else {
					ch.stats.DeltaApplied++
					ch.qm.deltaApplied.Inc()
				}
				return e.fanOutDelta(ch, ds, outs, ω, start, iv, nodes, rels)
			}
		}
	}

	// Shared-full path: one evaluation of the canonical pattern —
	// seeded from the parent group's binding table when one is fresh at
	// ω (hierarchy.go) — then per-member fan-out over the binding table
	// (never mutated by ApplyClauses, so all members share one table).
	bindings, iv, nodes, rels, ok, err := e.groupBindings(ch, g, parent, pmap, ω)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, nil
	}
	winElems := ch.stats.WindowElements
	wv := e.newWidthViews(g, ch, bindings, iv, nodes, rels, winElems, ω)

	var results []memberResult
	var memberErrs []error
	live := 0
	fanned := 0
	for _, m := range members {
		m.mu.Lock()
		if m.done {
			m.mu.Unlock()
			continue
		}
		// Width super-groups: a narrower member sees the wide rows
		// re-validated against its own window's store.
		v := wv.at(m.cfg.Width)
		ferr := v.err
		if ferr == nil && !v.ok {
			// The member's own window does not contain ω: it skips this
			// instant exactly as an unshared query would.
			m.mu.Unlock()
			continue
		}
		// A member merged into this running generation rebuilds its
		// previous result once, so its first diff continues the stream
		// a t0 registration would have produced.
		if ferr == nil && m.needBackfill {
			ferr = e.backfillLateMember(g, ch, m, ω)
		}
		var res *Result
		if ferr == nil {
			live++
			fanned += v.table.Len()
			var out *eval.Table
			out, ferr = e.fanOutTable(m, v.table, v.storeFor, v.iv, ω)
			if ferr == nil {
				var final *eval.Table
				final, ferr = e.memberDiff(m, out)
				if ferr == nil {
					m.stats.WindowElements = v.elems
					m.qm.windowElems.Set(int64(v.elems))
					res, ferr = e.finishEval(m, ω, start, m.op(), final, v.iv, v.nodes, v.rels)
				}
			}
		}
		if ferr != nil {
			ferr = fmt.Errorf("engine: query %q at %s: %w",
				m.name, ω.Format(time.RFC3339), ferr)
			m.failErr = ferr
			m.done = true
			m.qm.failures.Inc()
			m.mu.Unlock()
			memberErrs = append(memberErrs, ferr)
			if e.logger != nil {
				e.logger.Error("seraph: group member failed", "query", m.name, "at", ω, "err", ferr)
			}
			continue
		}
		if m.emit == nil {
			m.done = true // RETURN-terminated: single result then done
		}
		m.mu.Unlock()
		results = append(results, memberResult{sink: m.sink, res: res})
	}
	e.sched.mqoFanned.Add(int64(fanned))
	if live > 1 {
		e.sched.mqoSaved.Add(int64(live - 1))
	}
	return results, memberErrs, nil
}

// fanOutDelta packages a shared delta round's per-subscriber output
// tables into member Results. Subscribers that died this round (member-
// level maintenance errors) are failed here.
func (e *Engine) fanOutDelta(ch *Query, ds *deltaState, outs []*eval.Table, ω, start time.Time, iv stream.Interval, nodes, rels int) ([]memberResult, []error, error) {
	winElems := ch.stats.WindowElements
	var results []memberResult
	var memberErrs []error
	live := 0
	fanned := 0
	for i, sub := range ds.subs {
		m := sub.q
		if sub.dead {
			if sub.err != nil {
				serr := sub.err
				sub.err = nil
				m.mu.Lock()
				if !m.done {
					m.failErr = serr
					m.done = true
					m.qm.failures.Inc()
				}
				m.mu.Unlock()
				memberErrs = append(memberErrs, serr)
				if e.logger != nil {
					e.logger.Error("seraph: group member failed", "query", m.name, "at", ω, "err", serr)
				}
			}
			continue
		}
		out := outs[i]
		if out == nil {
			continue
		}
		m.mu.Lock()
		if m.done {
			m.mu.Unlock()
			continue
		}
		live++
		fanned += out.Len()
		if ds.lastBypassed {
			m.stats.DeltaBypasses++
			m.qm.deltaBypass.Inc()
		} else {
			m.stats.DeltaApplied++
			m.qm.deltaApplied.Inc()
		}
		m.stats.WindowElements = winElems
		m.qm.windowElems.Set(int64(winElems))
		res, ferr := e.finishEval(m, ω, start, m.op(), out, iv, nodes, rels)
		if ferr != nil {
			ferr = fmt.Errorf("engine: query %q at %s: %w",
				m.name, ω.Format(time.RFC3339), ferr)
			m.failErr = ferr
			m.done = true
			m.qm.failures.Inc()
			m.mu.Unlock()
			memberErrs = append(memberErrs, ferr)
			continue
		}
		if m.emit == nil {
			m.done = true
		}
		m.mu.Unlock()
		results = append(results, memberResult{sink: m.sink, res: res})
	}
	e.sched.mqoFanned.Add(int64(fanned))
	if live > 1 {
		e.sched.mqoSaved.Add(int64(live - 1))
	}
	return results, memberErrs, nil
}

// groupStoreFor returns a lazy snapshot-store accessor for member
// clauses that read the graph (startNode()/endNode()). In incremental
// mode the chassis roller's store is reused; otherwise a snapshot is
// built at most once per instant, and only if some member actually asks.
func (e *Engine) groupStoreFor(ch *Query, iv stream.Interval) func(time.Duration) *graphstore.Store {
	var cached *graphstore.Store
	return func(time.Duration) *graphstore.Store {
		if cached != nil {
			return cached
		}
		if e.incremental {
			if r := ch.rollers[ch.cfg.Width]; r != nil {
				cached = r.store
				return cached
			}
		}
		g, err := stream.Snapshot(ch.hist.Substream(iv))
		if err == nil && e.static != nil {
			err = g.UnionInPlace(e.static)
		}
		if err != nil {
			g = pg.New()
		}
		cached = graphstore.FromGraph(g)
		return cached
	}
}

// fanOutTable runs one member's bridge WITH (residual predicate +
// variable renaming) and remaining clauses over the shared binding
// table, producing the member's full (pre-operator) result.
func (e *Engine) fanOutTable(m *Query, bindings *eval.Table, storeFor func(time.Duration) *graphstore.Store, iv stream.Interval, ω time.Time) (*eval.Table, error) {
	ctx := &eval.Ctx{
		GraphFor: storeFor,
		Params:   m.params,
		Builtins: map[string]value.Value{
			"win_start": value.NewDateTime(iv.Start),
			"win_end":   value.NewDateTime(iv.End),
			"now":       value.NewDateTime(ω),
		},
		Match:               m.qm.match,
		DisableMatchIndexes: e.scanMatcher,
	}
	return eval.ApplyClauses(ctx, bindings, m.canon.Rest)
}

// memberDiff applies a member's stream operator against its previous
// full result (the classic diff path, per member). Caller holds m.mu.
func (e *Engine) memberDiff(m *Query, result *eval.Table) (*eval.Table, error) {
	op := m.op()
	out := result
	var err error
	switch op {
	case ast.OpOnEntering:
		prev := m.prev
		if prev == nil {
			prev = &eval.Table{Cols: result.Cols}
		}
		out, err = eval.BagDifference(result, prev)
	case ast.OpOnExiting:
		prev := m.prev
		if prev == nil {
			prev = &eval.Table{Cols: result.Cols}
		}
		out, err = eval.BagDifference(prev, result)
	}
	if err != nil {
		return nil, err
	}
	if op == ast.OpSnapshot {
		m.prev = nil
	} else {
		m.prev = result
	}
	return out, nil
}
