package engine

import (
	"testing"
	"time"

	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/parser"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/workload"
)

// feedFigure1 pushes the paper's Figure 1 stream into the engine,
// advancing the clock after each event.
func feedFigure1(t *testing.T, e *Engine) {
	t.Helper()
	for _, el := range workload.Figure1Stream() {
		if err := e.Push(el.Graph, el.Time); err != nil {
			t.Fatalf("push: %v", err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			t.Fatalf("advance: %v", err)
		}
	}
}

func clock(hour, min int) time.Time {
	return workload.FigureOneDay.Add(time.Duration(hour)*time.Hour + time.Duration(min)*time.Minute)
}

// TestTable5And6 reproduces Tables 5 and 6 of the paper: the Seraph
// student-trick query (Listing 5) over the Figure 1 stream emits user
// 1234 at 15:15 with window [14:15, 15:15] and user 5678 at 15:40 with
// window [14:40, 15:40] — and nothing else.
func TestTable5And6(t *testing.T) {
	e := New()
	col := &Collector{}
	if _, err := e.RegisterSource(workload.StudentTrickQuery, col.Sink()); err != nil {
		t.Fatalf("register: %v", err)
	}
	feedFigure1(t, e)

	// Evaluations run every 5 minutes from 14:45 through 15:40.
	if want := 12; len(col.Results) != want {
		t.Fatalf("evaluations = %d, want %d", len(col.Results), want)
	}

	nonEmpty := col.NonEmpty()
	if len(nonEmpty) != 2 {
		for _, r := range nonEmpty {
			t.Logf("at %s:\n%s", r.At.Format("15:04"), r.Table)
		}
		t.Fatalf("non-empty results = %d, want 2", len(nonEmpty))
	}

	// Table 5: output at 15:15.
	r5 := col.At(clock(15, 15))
	if r5 == nil || r5.Table.Len() != 1 {
		t.Fatalf("15:15 result: %+v", r5)
	}
	checkTrickRow(t, r5.Table, 0, 1234, 1, clock(14, 40), []int64{2, 3})
	if !r5.Window.Start.Equal(clock(14, 15)) || !r5.Window.End.Equal(clock(15, 15)) {
		t.Errorf("15:15 window = %s, want (14:15, 15:15]", r5.Window)
	}

	// Table 6: output at 15:40 — only the new match (ON ENTERING).
	r6 := col.At(clock(15, 40))
	if r6 == nil || r6.Table.Len() != 1 {
		t.Fatalf("15:40 result: %+v table:\n%s", r6, r6.Table)
	}
	checkTrickRow(t, r6.Table, 0, 5678, 2, clock(14, 58), []int64{3, 4})
	if !r6.Window.Start.Equal(clock(14, 40)) || !r6.Window.End.Equal(clock(15, 40)) {
		t.Errorf("15:40 window = %s, want (14:40, 15:40]", r6.Window)
	}
}

func checkTrickRow(t *testing.T, tab *eval.Table, row int, user, station int64, valTime time.Time, hops []int64) {
	t.Helper()
	if got := tab.Get(row, "r.user_id"); !got.IsInt() || got.Int() != user {
		t.Errorf("r.user_id = %s, want %d", got, user)
	}
	if got := tab.Get(row, "s.id"); !got.IsInt() || got.Int() != station {
		t.Errorf("s.id = %s, want %d", got, station)
	}
	if got := tab.Get(row, "r.val_time"); got.Kind() != value.KindDateTime || !got.DateTime().Equal(valTime) {
		t.Errorf("r.val_time = %s, want %s", got, valTime.Format("15:04"))
	}
	got := tab.Get(row, "hops")
	if !got.IsList() || len(got.List()) != len(hops) {
		t.Fatalf("hops = %s, want %v", got, hops)
	}
	for i, h := range hops {
		if got.List()[i].Int() != h {
			t.Errorf("hops[%d] = %s, want %d", i, got.List()[i], h)
		}
	}
}

// TestTable2 reproduces Table 2: the Cypher-only workaround (Listing 1)
// evaluated once at 15:40 over the merged graph of Figure 2 reports
// both users.
func TestTable2(t *testing.T) {
	g, err := stream.Snapshot(workload.Figure1Stream())
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	q, err := parser.ParseQuery(workload.StudentTrickCypher)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ctx := &eval.Ctx{
		Store: graphstore.FromGraph(g),
		Builtins: map[string]value.Value{
			"now": value.NewDateTime(clock(15, 40)),
		},
	}
	out, err := eval.EvalQuery(ctx, q)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", out.Len(), out)
	}
	// Deterministic order check: sort by user id via the table itself.
	users := map[int64]int{}
	for i := range out.Rows {
		users[out.Get(i, "r.user_id").Int()] = i
	}
	i1234, ok1 := users[1234]
	i5678, ok2 := users[5678]
	if !ok1 || !ok2 {
		t.Fatalf("missing expected users:\n%s", out)
	}
	checkTrickRow(t, out, i1234, 1234, 1, clock(14, 40), []int64{2, 3})
	checkTrickRow(t, out, i5678, 5678, 2, clock(14, 58), []int64{3, 4})
}

// TestFigure2Merge reproduces Figure 2: merging the five Figure 1
// events yields 4 stations, 4 vehicles and 8 relationships.
func TestFigure2Merge(t *testing.T) {
	g, err := stream.Snapshot(workload.Figure1Stream())
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if g.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", g.NumNodes())
	}
	if g.NumRels() != 8 {
		t.Errorf("relationships = %d, want 8", g.NumRels())
	}
	stations, bikes, ebikes := 0, 0, 0
	for _, n := range g.Nodes() {
		if n.HasLabel("Station") {
			stations++
		}
		if n.HasLabel("Bike") {
			bikes++
		}
		if n.HasLabel("EBike") {
			ebikes++
		}
	}
	if stations != 4 || bikes != 4 || ebikes != 2 {
		t.Errorf("stations=%d bikes=%d ebikes=%d, want 4/4/2", stations, bikes, ebikes)
	}
	rented, returned := 0, 0
	for _, r := range g.Rels() {
		switch r.Type {
		case "rentedAt":
			rented++
		case "returnedAt":
			returned++
		}
	}
	if rented != 4 || returned != 4 {
		t.Errorf("rentedAt=%d returnedAt=%d, want 4/4", rented, returned)
	}
}
