package engine

// overload.go is the engine's overload-protection layer: admission
// control on Push/PushStream bounded by the evaluation backlog, and
// deadline-based load shedding that skips evaluation instants with an
// explicit marker instead of falling behind silently. Both mechanisms
// are off by default and observable through the metrics registry
// (seraph_backpressure_total, seraph_shed_total,
// seraph_eval_backlog_instants).

import (
	"errors"
	"time"
)

// ErrBusy is returned by Push/PushStream when admission control is
// enabled (WithMaxInFlight) and the evaluation backlog is at capacity.
// It is transient: callers should back off and retry, and the HTTP
// layer maps it to 429 + Retry-After. queue.IsTransient recognizes it
// structurally, so the ingest connector's retry loop handles it
// without importing this package's sentinels.
var ErrBusy error = busyError("engine: evaluation backlog at capacity")

type busyError string

func (b busyError) Error() string { return string(b) }

// Transient marks the error as retryable (see queue.IsTransient).
func (busyError) Transient() bool { return true }

// IsBusy reports whether err is (or wraps) the engine's admission
// rejection.
func IsBusy(err error) bool { return errors.Is(err, ErrBusy) }

// WithMaxInFlight enables admission control: Push and PushStream are
// rejected with ErrBusy while the engine-wide evaluation backlog — the
// number of due-but-unexecuted evaluation instants across all
// registered queries — is at or above n. A stalled sink or a slow
// query therefore pushes back on producers instead of letting the
// backlog grow without bound. n <= 0 (the default) disables admission
// control.
func WithMaxInFlight(n int) Option {
	return func(e *Engine) { e.maxInFlight = n }
}

// WithEvalDeadline enables load shedding: once a query's evaluation
// chain has been catching up for longer than d of wall-clock time,
// every due instant except the most recent one is shed — skipped
// without evaluation, reported to the sink as a Result with Skipped
// set and counted in seraph_shed_total — so the query trades
// completeness for freshness instead of falling behind silently. The
// freshest due instant is always evaluated. d <= 0 (the default)
// disables shedding.
func WithEvalDeadline(d time.Duration) Option {
	return func(e *Engine) { e.evalDeadline = d }
}

// WithWallClock injects the wall-clock source used for deadline
// shedding (default time.Now). Tests and the chaos harness substitute
// a virtual clock to make shed schedules deterministic.
func WithWallClock(now func() time.Time) Option {
	return func(e *Engine) { e.wallClock = now }
}

// EvalBacklog returns the number of due-but-unexecuted evaluation
// instants across all registered queries, relative to the engine's
// virtual clock. This is the quantity admission control bounds; it is
// also exported as the seraph_eval_backlog_instants gauge.
func (e *Engine) EvalBacklog() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evalBacklogLocked()
}

// evalBacklogLocked computes the backlog and refreshes its gauge. The
// caller must hold e.mu; per-query state is read under q.mu
// (lock order e.mu → q.mu).
func (e *Engine) evalBacklogLocked() int64 {
	var backlog int64
	count := func(q *Query) {
		q.mu.Lock()
		if !q.done && !q.pendingStart && !q.nextEval.After(e.now) && q.cfg.Slide > 0 {
			backlog += int64(e.now.Sub(q.nextEval)/q.cfg.Slide) + 1
		}
		q.mu.Unlock()
	}
	for _, q := range e.queries {
		if q.memberOf != nil {
			continue // grouped members: their chassis is the unit of work
		}
		count(q)
	}
	for _, g := range e.groupList {
		count(g.chassis)
	}
	e.sched.backlog.Set(backlog)
	return backlog
}

// admit applies admission control for one push. The caller must hold
// e.mu. It returns ErrBusy (counted in seraph_backpressure_total) when
// the backlog is at capacity. The backlog is measured before the
// incoming element's timestamp moves the virtual clock, so a sparse
// stream's own time jumps are not held against it — only work that an
// AdvanceTo has not yet drained.
func (e *Engine) admit() error {
	if e.maxInFlight <= 0 {
		return nil
	}
	if backlog := e.evalBacklogLocked(); backlog >= int64(e.maxInFlight) {
		e.sched.backpressure.Inc()
		return ErrBusy
	}
	return nil
}

// shedDue reports whether the instant ω of q should be shed, given
// that the chain began catching up at chainStart. The most recent due
// instant is never shed. The caller must hold q.mu.
func (e *Engine) shedDue(q *Query, ω time.Time) bool {
	if e.evalDeadline <= 0 || q.chainStart.IsZero() {
		return false
	}
	if ω.Add(q.cfg.Slide).After(q.evalTarget) {
		return false // freshest due instant: always evaluate
	}
	return e.wallNow().Sub(q.chainStart) > e.evalDeadline
}

func (e *Engine) wallNow() time.Time {
	if e.wallClock != nil {
		return e.wallClock()
	}
	return time.Now()
}
