package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx, err := l.Append([]byte(fmt.Sprintf("record-%04d", from+i)))
		if err != nil {
			t.Fatalf("append %d: %v", from+i, err)
		}
		if idx != int64(from+i) {
			t.Fatalf("append %d got index %d", from+i, idx)
		}
	}
}

func collect(t *testing.T, l *Log, from int64) map[int64]string {
	t.Helper()
	out := map[int64]string{}
	if err := l.Replay(from, func(i int64, p []byte) error {
		out[i] = string(p)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextIndex(); got != 25 {
		t.Fatalf("NextIndex after reopen = %d, want 25", got)
	}
	appendN(t, l2, 25, 5)
	got := collect(t, l2, 0)
	if len(got) != 30 {
		t.Fatalf("replayed %d records, want 30", len(got))
	}
	for i := int64(0); i < 30; i++ {
		if got[i] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d = %q", i, got[i])
		}
	}
	if part := collect(t, l2, 27); len(part) != 3 {
		t.Fatalf("replay from 27: %d records, want 3", len(part))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	bases, err := segmentBases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) < 3 {
		t.Fatalf("expected >= 3 segments at 64-byte rotation, got %d", len(bases))
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(got))
	}
}

// TestTornTailTruncated simulates a crash mid-write: extra garbage (a
// partial frame) at the end of the last segment must be truncated on
// reopen and the log must keep appending from the clean prefix.
func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []string{"partial-header", "partial-payload", "flipped-crc"} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segName(0))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch tear {
			case "partial-header":
				data = append(data, 0x05, 0x00, 0x00)
			case "partial-payload":
				data = append(data, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 'x')
			case "flipped-crc":
				// Re-append a whole valid frame, then flip one payload
				// bit: the tail frame fails its CRC.
				l3, err := Open(dir, Options{Fsync: FsyncAlways})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := l3.Append([]byte("doomed")); err != nil {
					t.Fatal(err)
				}
				l3.Close()
				data, err = os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-1] ^= 0x01
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{Fsync: FsyncNever})
			if err != nil {
				t.Fatalf("reopen with torn tail: %v", err)
			}
			defer l2.Close()
			if got := l2.NextIndex(); got != 10 {
				t.Fatalf("NextIndex = %d, want 10 (torn tail kept?)", got)
			}
			appendN(t, l2, 10, 3)
			if got := collect(t, l2, 0); len(got) != 13 {
				t.Fatalf("replayed %d records, want 13", len(got))
			}
		})
	}
}

// TestSealedCorruptionIsTyped: damage inside a sealed segment must
// surface as ErrCorrupt from Replay, never as a silent skip.
func TestSealedCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40) // several segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	bases, err := segmentBases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) < 2 {
		t.Fatal("need at least two segments")
	}
	path := filepath.Join(dir, segName(bases[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err) // only the last segment is scanned at open
	}
	defer l2.Close()
	err = l2.Replay(0, func(int64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over sealed corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncateFront(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.TruncateFront(20); err != nil {
		t.Fatal(err)
	}
	first := l.FirstIndex()
	if first == 0 || first > 20 {
		t.Fatalf("FirstIndex after TruncateFront(20) = %d, want (0, 20]", first)
	}
	got := collect(t, l, first)
	for i := first; i < 40; i++ {
		if got[i] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d lost after TruncateFront", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Retention survives reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.FirstIndex(); got != first {
		t.Fatalf("FirstIndex after reopen = %d, want %d", got, first)
	}
	if got := l2.NextIndex(); got != 40 {
		t.Fatalf("NextIndex after reopen = %d, want 40", got)
	}
}

// TestIntervalPolicySyncs: under FsyncInterval an append past the
// interval triggers a sync; the injectable clock makes it
// deterministic.
func TestIntervalPolicySyncs(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	opts := Options{Fsync: FsyncInterval, SyncEvery: time.Second, now: func() time.Time { return now }}
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if !l.dirty {
		t.Fatal("append within interval should not have synced")
	}
	now = now.Add(2 * time.Second)
	if _, err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if l.dirty {
		t.Fatal("append past interval should have synced")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() round-trip: %q", got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestEmptyPayloadAndLargeRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1<<16)
	for _, p := range [][]byte{{}, big, {}} {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 3 || got[0] != "" || got[1] != string(big) || got[2] != "" {
		t.Fatalf("replay mismatch: %d records", len(got))
	}
}
