// Package wal implements the durable append-only log that backs the
// engine's crash recovery: a directory of fixed-size segment files
// holding CRC-framed records, written strictly in order and addressed
// by a monotonically increasing record index. The broker persists its
// topics through it (see queue.OpenDurable), so engine state after a
// crash is reconstructed as "last checkpoint + replay-from-offset".
//
// Frame layout (little endian):
//
//	[4B payload length][4B CRC-32C over length bytes + payload][payload]
//
// Durability is governed by an fsync Policy: Always fsyncs every
// append before acknowledging it (no acknowledged record is ever
// lost), Interval fsyncs opportunistically once the configured
// interval has elapsed (bounded loss window), Never leaves flushing
// to the OS (crash may lose the unflushed tail). Whatever the policy,
// a torn tail — a crash mid-write — is detected on Open by CRC
// validation and truncated away, so the log always reopens to a clean
// prefix of acknowledged records. Corruption *before* the tail (bit
// rot inside a sealed region) is not silently skipped: Replay stops
// with ErrCorrupt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seraph/internal/metrics"
)

// ErrCorrupt reports a CRC or framing violation in a sealed (non-tail)
// region of the log — data that was once acknowledged is damaged, and
// replaying past it would silently drop records, so recovery must stop
// and surface the fault.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// castagnoli is the CRC-32C table (iSCSI polynomial), the standard
// choice for storage framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appends are fsynced to stable storage.
type Policy int

const (
	// FsyncAlways syncs before every append returns: an acknowledged
	// record survives any crash. The safest and slowest policy.
	FsyncAlways Policy = iota
	// FsyncInterval syncs opportunistically once FsyncInterval has
	// elapsed since the last sync (and always on rotation and Close).
	// A crash may lose at most the records appended since the last
	// sync.
	FsyncInterval
	// FsyncNever leaves flushing entirely to the operating system. A
	// crash may lose the whole unflushed tail; the tail is truncated to
	// a clean prefix on reopen.
	FsyncNever
)

// String implements flag-friendly rendering.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configure a log.
type Options struct {
	// Fsync selects the sync policy (default FsyncAlways).
	Fsync Policy
	// SyncEvery is the FsyncInterval cadence (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, records seraph_wal_appends_total,
	// seraph_wal_bytes_total and the seraph_wal_fsync_seconds
	// histogram.
	Metrics *metrics.Registry
	// now is the fsync-interval clock, injectable for tests.
	now func() time.Time
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.now == nil {
		o.now = time.Now
	}
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	headerSize = 8 // 4B length + 4B CRC
)

// Log is a segmented append-only record log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	first int64 // index of the oldest retained record
	next  int64 // index the next Append receives

	seg      *os.File // active (last) segment, opened for append
	segBase  int64    // index of the active segment's first record
	segSize  int64    // current byte size of the active segment
	lastSync time.Time
	dirty    bool
	closed   bool

	appends *metrics.Counter
	bytes   *metrics.Counter
	syncs   *metrics.Histogram
}

// Open opens (creating if necessary) the log in dir. The last segment
// is scanned and any torn tail — an incomplete or CRC-failing final
// region left by a crash mid-write — is truncated away, so the log
// resumes from a clean prefix.
func Open(dir string, opts Options) (*Log, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts, lastSync: opts.now()}
	if reg := opts.Metrics; reg != nil {
		l.appends = reg.Counter("seraph_wal_appends_total", "Records appended to the write-ahead log.")
		l.bytes = reg.Counter("seraph_wal_bytes_total", "Payload bytes appended to the write-ahead log.")
		l.syncs = reg.Histogram("seraph_wal_fsync_seconds", "Latency of write-ahead log fsync calls.")
	}
	bases, err := segmentBases(dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		l.first, l.next, l.segBase = 0, 0, 0
		if err := l.openSegment(0, true); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.first = bases[0]
	l.segBase = bases[len(bases)-1]
	// Scan the last segment: count whole valid frames, truncate the
	// rest (the torn tail).
	path := l.segPath(l.segBase)
	n, validBytes, err := scanSegment(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validBytes {
		if err := f.Truncate(validBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.seg, l.segSize = f, validBytes
	l.next = l.segBase + n
	return l, nil
}

// FirstIndex returns the index of the oldest retained record.
func (l *Log) FirstIndex() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// NextIndex returns the index the next Append will receive (the number
// of records ever appended when the log has never been truncated).
func (l *Log) NextIndex() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Append writes one record and returns its index. Under FsyncAlways
// the record is on stable storage when Append returns.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[0:4])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.seg.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.seg.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(headerSize + len(payload))
	idx := l.next
	l.next++
	l.dirty = true
	l.appends.Inc()
	l.bytes.Add(int64(len(payload)))
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		if l.opts.now().Sub(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return idx, nil
}

// Sync flushes the active segment to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	t0 := time.Now()
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Observe(time.Since(t0))
	l.dirty = false
	l.lastSync = l.opts.now()
	return nil
}

// rotate seals the active segment (final sync) and starts a new one
// based at the next record index.
func (l *Log) rotate() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.segBase = l.next
	return l.openSegment(l.segBase, true)
}

func (l *Log) openSegment(base int64, create bool) error {
	flags := os.O_RDWR | os.O_APPEND
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(l.segPath(base), flags, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.seg, l.segSize = f, fi.Size()
	return nil
}

// Replay invokes fn for every record with index >= from, in order.
// A framing or CRC fault inside a sealed segment, or anywhere before
// the final record of the last segment, aborts with ErrCorrupt; a torn
// tail at the very end of the last segment ends the replay cleanly
// (Open already truncates it, but Replay tolerates it again so a
// read-only replay of a crashed directory still yields the clean
// prefix). fn returning an error aborts the replay with that error.
func (l *Log) Replay(from int64, fn func(index int64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	bases, err := segmentBases(l.dir)
	dir, last := l.dir, l.segBase
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for si, base := range bases {
		end := int64(-1) // unknown; scan to EOF
		if si+1 < len(bases) {
			end = bases[si+1]
		}
		if end >= 0 && end <= from {
			continue // segment wholly before the replay start
		}
		idx := base
		sealed := base != last
		err := replaySegment(filepath.Join(dir, segName(base)), sealed, func(payload []byte) error {
			i := idx
			idx++
			if i < from {
				return nil
			}
			return fn(i, payload)
		})
		if err != nil {
			return err
		}
		if end >= 0 && idx != end {
			return fmt.Errorf("%w: segment %s holds %d records, next segment starts at %d",
				ErrCorrupt, segName(base), idx-base, end)
		}
	}
	return nil
}

// TruncateFront releases storage for records below upTo: whole
// segments whose every record has index < upTo are deleted. Records in
// the segment containing upTo are retained (deletion is
// segment-granular), so FirstIndex may remain below upTo.
func (l *Log) TruncateFront(upTo int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	bases, err := segmentBases(l.dir)
	if err != nil {
		return err
	}
	for i, base := range bases {
		// A segment is removable when the next segment starts at or
		// below upTo (so every record here is < upTo) and it is not the
		// active segment.
		if i+1 >= len(bases) || bases[i+1] > upTo || base == l.segBase {
			break
		}
		if err := os.Remove(l.segPath(base)); err != nil {
			return fmt.Errorf("wal: truncate front: %w", err)
		}
		l.first = bases[i+1]
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

func (l *Log) segPath(base int64) string { return filepath.Join(l.dir, segName(base)) }

func segName(base int64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, base, segSuffix)
}

// segmentBases lists the segment base indices in dir, ascending.
func segmentBases(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var bases []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseInt(numeric, 10, 64)
		if err != nil || base < 0 {
			return nil, fmt.Errorf("wal: malformed segment name %q", name)
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// scanSegment counts the whole valid frames at the start of a segment
// file and returns how many bytes they span. Everything after the
// valid prefix is a torn tail.
func scanSegment(path string) (records int64, validBytes int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: scan segment: %w", err)
	}
	off := int64(0)
	for {
		n, ok := frameAt(data, off)
		if !ok {
			return records, off, nil
		}
		off += n
		records++
	}
}

// frameAt validates the frame starting at off and returns its total
// byte length. ok is false for a short or CRC-failing frame.
func frameAt(data []byte, off int64) (length int64, ok bool) {
	if off+headerSize > int64(len(data)) {
		return 0, false
	}
	plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	end := off + headerSize + plen
	if plen > int64(len(data)) || end > int64(len(data)) || end < off {
		return 0, false
	}
	crc := crc32.Update(0, castagnoli, data[off:off+4])
	crc = crc32.Update(crc, castagnoli, data[off+headerSize:end])
	if crc != want {
		return 0, false
	}
	return headerSize + plen, true
}

// replaySegment streams a segment's valid frames to fn. In a sealed
// segment any invalid frame (including a short tail) is ErrCorrupt; in
// the active segment an invalid region ends the replay (it is the torn
// tail, not corruption).
func replaySegment(path string, sealed bool, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: replay segment: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		n, ok := frameAt(data, off)
		if !ok {
			if sealed {
				return fmt.Errorf("%w: %s at byte %d", ErrCorrupt, filepath.Base(path), off)
			}
			return nil
		}
		if err := fn(data[off+headerSize : off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}
