package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one valid CRC frame around payload.
func frame(payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[0:4])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	return append(hdr[:], payload...)
}

// FuzzWALReplay feeds raw segment bytes — truncations, bit flips,
// duplicated frames, arbitrary garbage — through Open and Replay. The
// contract under any input: no panic, and either a typed error
// (ErrCorrupt for sealed damage) or a clean prefix of valid records.
// Records reported by Replay must be exactly the valid frame prefix of
// the input.
func FuzzWALReplay(f *testing.F) {
	valid := append(frame([]byte("alpha")), frame([]byte("beta-longer-payload"))...)
	valid = append(valid, frame([]byte{})...)
	f.Add(valid)                // clean log
	f.Add(valid[:len(valid)-3]) // torn tail (partial frame)
	flipped := append([]byte(nil), valid...)
	flipped[len(frame([]byte("alpha")))+9] ^= 0x40 // mid-record bit flip
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), valid...)) // duplicated frames
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference: the valid frame prefix of the raw bytes.
		var wantPayloads [][]byte
		off := int64(0)
		for {
			n, ok := frameAt(data, off)
			if !ok {
				break
			}
			wantPayloads = append(wantPayloads, data[off+headerSize:off+n])
			off += n
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			return // typed rejection is fine; a panic would have failed already
		}
		defer l.Close()
		if got := l.NextIndex(); got != int64(len(wantPayloads)) {
			t.Fatalf("NextIndex = %d, want %d (valid prefix)", got, len(wantPayloads))
		}
		i := 0
		err = l.Replay(0, func(idx int64, payload []byte) error {
			if i >= len(wantPayloads) {
				t.Fatalf("replay produced record %d beyond the %d-record valid prefix", idx, len(wantPayloads))
			}
			if string(payload) != string(wantPayloads[i]) {
				t.Fatalf("record %d: payload mismatch", idx)
			}
			i++
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay error is not typed: %v", err)
		}
		if err == nil && i != len(wantPayloads) {
			t.Fatalf("replay returned %d of %d valid records without error", i, len(wantPayloads))
		}

		// The log must remain appendable after swallowing a torn tail.
		if _, err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
