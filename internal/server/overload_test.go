package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
)

func eventJSON(t *testing.T, id int64, ts time.Time) string {
	t.Helper()
	g := pg.New()
	g.AddNode(&value.Node{ID: id, Labels: []string{"N"}, Props: map[string]value.Value{}})
	data, err := ingest.Encode(g, ts)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEventsStalledSinkReturns429 is the acceptance scenario: a sink
// that stalls mid-evaluation must not let the engine's backlog grow
// without bound — once the admission bound is hit, POST /events
// returns 429 with the configured Retry-After, and the backlog gauge
// stays at the bound.
func TestEventsStalledSinkReturns429(t *testing.T) {
	const maxInFlight = 5
	srv := New(engine.WithMaxInFlight(maxInFlight))
	srv.SetRetryAfter(2 * time.Second)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	_, err := srv.Engine().RegisterSource(`
REGISTER QUERY stall STARTING AT 2026-07-06T10:00:00
{ MATCH (n:N) WITHIN PT10S
  EMIT n.name AS name SNAPSHOT EVERY PT1S }`, func(engine.Result) {
		if !once {
			once = true
			close(entered)
			<-release
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	// The first event triggers an evaluation whose sink stalls; the
	// request hangs inside AdvanceTo, so run it in the background.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		post(t, ts.URL+"/events", eventJSON(t, 1, base))
	}()
	<-entered

	// Push more events. Each advances the virtual clock by one slide,
	// growing the due-but-unexecuted backlog while the chain is stuck
	// in the stalled sink; within maxInFlight+1 requests one must be
	// rejected.
	got429 := false
	for i := 1; i <= maxInFlight+2 && !got429; i++ {
		resp, body := post(t, ts.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second)))
		switch resp.StatusCode {
		case 200:
		case 429:
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", ra)
			}
			if body["error"] == nil {
				t.Error("429 body missing error")
			}
		default:
			t.Fatalf("unexpected status %d: %v", resp.StatusCode, body)
		}
	}
	if !got429 {
		t.Fatal("never saw 429 despite stalled sink and admission bound")
	}
	// In-flight work stays bounded: the backlog can never exceed the
	// admission bound plus the one instant the stuck worker owns.
	if bl := srv.Engine().EvalBacklog(); bl > maxInFlight+1 {
		t.Errorf("eval backlog = %d, want <= %d", bl, maxInFlight+1)
	}
	release <- struct{}{} // unblock the stalled evaluation
	<-firstDone
}

// TestEventsQueueModeBackpressure: with the bounded ingest queue in
// reject mode, a stalled engine fills the queue and POST /events turns
// into 429 + Retry-After; once the engine drains, queued events are
// applied in order and poison events land on the DLQ.
func TestEventsQueueModeBackpressure(t *testing.T) {
	srv := New()
	if err := srv.EnableIngestQueue(4, queue.PolicyReject); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.EnableIngestQueue(4, queue.PolicyReject); err == nil {
		t.Fatal("double enable must fail")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	if _, err := srv.Engine().RegisterSource(`
REGISTER QUERY stall STARTING AT 2026-07-06T10:00:00
{ MATCH (n:N) WITHIN PT10S
  EMIT n.name AS name SNAPSHOT EVERY PT1S }`, func(engine.Result) {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	// First event: accepted (202-equivalent: enqueued), the connector
	// picks it up, evaluates, and stalls in the sink.
	if resp, body := post(t, ts.URL+"/events", eventJSON(t, 1, base)); resp.StatusCode != 200 {
		t.Fatalf("enqueue: %d %v", resp.StatusCode, body)
	}
	<-entered

	// The connector goroutine is stuck in AdvanceTo. Fill the bounded
	// topic to capacity, then one more must be rejected with 429.
	accepted := 0
	got429 := false
	for i := 1; i <= 8 && !got429; i++ {
		resp, _ := post(t, ts.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second)))
		switch resp.StatusCode {
		case 200:
			accepted++
		case 429:
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Errorf("Retry-After = %q, want \"1\"", ra)
			}
		default:
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("bounded queue never rejected")
	}
	if accepted > 4 {
		t.Errorf("accepted %d events into a capacity-4 queue", accepted)
	}
	st, _, ok := srv.IngestQueueStats()
	if !ok || st.Rejected == 0 {
		t.Errorf("queue stats = %+v ok=%v, want rejected > 0", st, ok)
	}

	close(release) // engine drains
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := srv.Engine().Queries()[0].Stats().ElementsSeen; n == accepted+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued events not applied: saw %d, want %d",
				srv.Engine().Queries()[0].Stats().ElementsSeen, accepted+1)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A poison event — timestamp behind the stream — is quarantined to
	// the DLQ, not fatal.
	if resp, _ := post(t, ts.URL+"/events", eventJSON(t, 99, base.Add(-time.Hour))); resp.StatusCode != 200 {
		t.Fatalf("poison enqueue rejected synchronously")
	}
	for {
		if _, dl, _ := srv.IngestQueueStats(); dl == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poison event never quarantined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close drains and stops the connector; a second Close is a no-op.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResultRingHandlesSkipped: shed results (possibly with nil
// tables) are stored, marked, and never panic the ring.
func TestResultRingHandlesSkipped(t *testing.T) {
	r := &resultRing{}
	r.add(engine.Result{Query: "q", At: time.Unix(1, 0), Skipped: true, Table: nil})
	r.add(engine.Result{Query: "q", At: time.Unix(2, 0), Table: &eval.Table{Cols: []string{"x"}}})
	items := r.after(0)
	if len(items) != 2 {
		t.Fatalf("stored %d results", len(items))
	}
	if !items[0].Skipped || items[0].Rows == nil || len(items[0].Rows) != 0 {
		t.Errorf("skipped result stored as %+v", items[0])
	}
	if items[1].Skipped {
		t.Error("real result marked skipped")
	}
}
