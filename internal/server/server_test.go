package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/value"
	"seraph/internal/workload"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

func get(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// pairEventNDJSON encodes one graph event carrying two :P nodes joined
// by an :F relationship, for driving the shared-group queries over HTTP.
func pairEventNDJSON(t *testing.T, relID, v int64, at time.Time) string {
	t.Helper()
	g := pg.New()
	g.AddNode(&value.Node{ID: 1, Labels: []string{"P"}, Props: map[string]value.Value{"k": value.NewInt(1)}})
	g.AddNode(&value.Node{ID: 2, Labels: []string{"P"}, Props: map[string]value.Value{"k": value.NewInt(2)}})
	if err := g.AddRel(&value.Relationship{ID: relID, StartID: 1, EndID: 2, Type: "F",
		Props: map[string]value.Value{"v": value.NewInt(v)}}); err != nil {
		t.Fatal(err)
	}
	data, err := ingest.Encode(g, at)
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

func figure1NDJSON(t *testing.T) string {
	t.Helper()
	var b bytes.Buffer
	for _, el := range workload.Figure1Stream() {
		data, err := ingest.Encode(el.Graph, el.Time)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	var m map[string]any
	resp := get(t, ts.URL+"/healthz", &m)
	if resp.StatusCode != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("health: %d %v", resp.StatusCode, m)
	}
}

func TestFullPipelineOverHTTP(t *testing.T) {
	ts := newTestServer(t)

	// Register the running-example query.
	resp, m := post(t, ts.URL+"/queries", workload.StudentTrickQuery)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, m)
	}
	if m["name"] != "student_trick" {
		t.Fatalf("name: %v", m)
	}

	// Ingest the Figure 1 events.
	resp, m = post(t, ts.URL+"/events", figure1NDJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %v", resp.StatusCode, m)
	}
	if m["ingested"].(float64) != 5 {
		t.Fatalf("ingested: %v", m)
	}

	// Fetch results: 12 evaluations, 2 with rows (Tables 5 and 6).
	var results []map[string]any
	get(t, ts.URL+"/queries/student_trick/results", &results)
	if len(results) != 12 {
		t.Fatalf("results = %d", len(results))
	}
	nonEmpty := 0
	var lastSeq float64
	for _, r := range results {
		rows := r["rows"].([]any)
		if len(rows) > 0 {
			nonEmpty++
		}
		lastSeq = r["seq"].(float64)
	}
	if nonEmpty != 2 {
		t.Errorf("non-empty results = %d, want 2", nonEmpty)
	}

	// Incremental polling with since=.
	var newer []map[string]any
	get(t, fmt.Sprintf("%s/queries/student_trick/results?since=%d", ts.URL, int(lastSeq)), &newer)
	if len(newer) != 0 {
		t.Errorf("nothing newer expected, got %d", len(newer))
	}

	// Stats endpoint.
	var stat map[string]any
	get(t, ts.URL+"/queries/student_trick", &stat)
	if stat["name"] != "student_trick" {
		t.Errorf("stats: %v", stat)
	}

	// One-time Cypher over the merged graph (Figure 2).
	body, _ := json.Marshal(map[string]any{
		"query": "MATCH (n) RETURN count(*) AS n",
	})
	resp2, err := http.Post(ts.URL+"/cypher", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var cy map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&cy); err != nil {
		t.Fatal(err)
	}
	rows := cy["rows"].([]any)
	if n := rows[0].(map[string]any)["n"].(float64); n != 8 {
		t.Errorf("merged node count = %v", n)
	}

	// List queries.
	var list []map[string]any
	get(t, ts.URL+"/queries", &list)
	if len(list) != 1 {
		t.Errorf("list: %v", list)
	}

	// Deregister.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/student_trick", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp3.StatusCode)
	}
	if resp := get(t, ts.URL+"/queries/student_trick", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("after delete: %d", resp.StatusCode)
	}
}

func TestRegisterErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, m := post(t, ts.URL+"/queries", "THIS IS NOT SERAPH")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query: %d %v", resp.StatusCode, m)
	}
	if _, ok := m["error"]; !ok {
		t.Error("error body expected")
	}
	// Unknown query results.
	if resp := get(t, ts.URL+"/queries/nosuch/results", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown results: %d", resp.StatusCode)
	}
}

func TestEventErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, m := post(t, ts.URL+"/events", "garbage\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad event: %d %v", resp.StatusCode, m)
	}
	// Out-of-order events are rejected once a query is registered.
	if resp, _ := post(t, ts.URL+"/queries", `REGISTER QUERY q STARTING AT NOW { MATCH (a) WITHIN PT1M EMIT a EVERY PT1M }`); resp.StatusCode != http.StatusCreated {
		t.Fatal("register failed")
	}
	lines := strings.Split(strings.TrimSpace(figure1NDJSON(t)), "\n")
	if resp, _ := post(t, ts.URL+"/events", lines[2]+"\n"); resp.StatusCode != http.StatusOK {
		t.Fatal("first event failed")
	}
	resp, m = post(t, ts.URL+"/events", lines[0]+"\n")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("out-of-order event: %d %v", resp.StatusCode, m)
	}
}

func TestCypherParams(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/events", figure1NDJSON(t))
	body, _ := json.Marshal(map[string]any{
		"query":  "MATCH (s:Station) WHERE s.id >= $min RETURN count(*) AS n",
		"params": map[string]any{"min": 3},
	})
	resp, err := http.Post(ts.URL+"/cypher", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	rows := out["rows"].([]any)
	if n := rows[0].(map[string]any)["n"].(float64); n != 2 {
		t.Errorf("stations ≥ 3: %v", n)
	}
}

// TestCheckpointEndpointAndRestore: a server restored from the
// /checkpoint download continues evaluating its queries.
func TestCheckpointEndpointAndRestore(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, m := post(t, ts.URL+"/queries", workload.StudentTrickQuery); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v", m)
	}
	lines := strings.Split(strings.TrimSpace(figure1NDJSON(t)), "\n")
	// Feed the first three events (through Table 5).
	post(t, ts.URL+"/events", strings.Join(lines[:3], "\n")+"\n")

	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	// Continue with the remaining events on the restored server.
	post(t, ts2.URL+"/events", strings.Join(lines[3:], "\n")+"\n")
	var results []map[string]any
	get(t, ts2.URL+"/queries/student_trick/results", &results)
	// Post-restore evaluations: 15:20 through 15:40 (5 instants); the
	// last one carries the Table 6 row for user 5678 only.
	nonEmpty := 0
	for _, r := range results {
		if rows := r["rows"].([]any); len(rows) > 0 {
			nonEmpty++
			row := rows[0].(map[string]any)
			if row["r.user_id"].(float64) != 5678 {
				t.Errorf("post-restore match: %v", row)
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("post-restore non-empty results = %d, want 1", nonEmpty)
	}
}

// TestSharedGroupsEndpoint: with -mqo (WithSharedEval), two queries
// differing only in a residual predicate surface as one shared group
// on GET /groups, and each query's /queries entries carry the group id
// and size. Without shared evaluation, /groups answers an empty list.
func TestSharedGroupsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(engine.WithSharedEval(true)).Handler())
	t.Cleanup(ts.Close)
	body := func(name string, v int) string {
		return fmt.Sprintf(`REGISTER QUERY %s STARTING AT 2026-07-06T10:00:00
{
  MATCH (a:P)-[r:F]->(b:P)
  WITHIN PT20S
  WHERE r.v > %d
  EMIT a.k AS k
  SNAPSHOT EVERY PT5S
}`, name, v)
	}
	for i, name := range []string{"g1", "g2"} {
		if resp, _ := post(t, ts.URL+"/queries", body(name, i)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: %d", name, resp.StatusCode)
		}
	}

	var groups []engine.GroupInfo
	get(t, ts.URL+"/groups", &groups)
	if len(groups) != 1 || len(groups[0].Members) != 2 {
		t.Fatalf("groups = %+v, want one group of two", groups)
	}

	var queries []struct {
		Name      string `json:"name"`
		Group     string `json:"group"`
		GroupSize int    `json:"group_size"`
	}
	get(t, ts.URL+"/queries", &queries)
	if len(queries) != 2 {
		t.Fatalf("queries = %+v", queries)
	}
	for _, q := range queries {
		if q.Group != groups[0].ID || q.GroupSize != 2 {
			t.Fatalf("query %s group %q/%d, want %q/2", q.Name, q.Group, q.GroupSize, groups[0].ID)
		}
	}

	// Hierarchy metadata: one generation of the key, and per-member
	// watermarks (width + next evaluation instant) for both members.
	g0 := groups[0]
	if g0.Generation != 1 || g0.Generations != 1 || g0.MergedLateJoins != 0 {
		t.Fatalf("generations = %d/%d merged=%d, want 1/1 merged=0",
			g0.Generation, g0.Generations, g0.MergedLateJoins)
	}
	if len(g0.MemberInfo) != 2 {
		t.Fatalf("member_info = %+v, want two entries", g0.MemberInfo)
	}
	for _, m := range g0.MemberInfo {
		if m.Width != "20s" || m.NextEval.IsZero() || m.LateJoined {
			t.Fatalf("member watermark %+v, want width 20s, non-zero next_eval, not late", m)
		}
	}

	// Drive four instants past the start, then register a third query
	// late: it merges into the running generation (one catch-up
	// evaluation), and /groups reports the merge and the caught-up
	// watermark.
	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var b strings.Builder
	for i, sec := range []int{1, 6, 11, 16} {
		b.WriteString(pairEventNDJSON(t, int64(100+i), int64(i), base.Add(time.Duration(sec)*time.Second)))
	}
	post(t, ts.URL+"/events", b.String())
	if resp, m := post(t, ts.URL+"/queries", body("g3", 2)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("late register g3: %d %v", resp.StatusCode, m)
	}
	get(t, ts.URL+"/groups", &groups)
	if len(groups) != 1 || len(groups[0].Members) != 3 {
		t.Fatalf("groups after late join = %+v, want one group of three", groups)
	}
	g0 = groups[0]
	if g0.Generations != 1 || g0.MergedLateJoins != 1 {
		t.Fatalf("after late join: generations=%d merged=%d, want 1/1", g0.Generations, g0.MergedLateJoins)
	}
	var late *engine.GroupMember
	for i := range g0.MemberInfo {
		if g0.MemberInfo[i].Name == "g3" {
			late = &g0.MemberInfo[i]
		}
	}
	if late == nil || !late.LateJoined {
		t.Fatalf("late member not flagged: %+v", g0.MemberInfo)
	}
	for _, m := range g0.MemberInfo {
		if m.NextEval.IsZero() || !m.NextEval.Equal(late.NextEval) {
			t.Fatalf("member watermarks diverge after catch-up: %+v", g0.MemberInfo)
		}
	}

	// Unshared server: endpoint present, empty list.
	plain := newTestServer(t)
	var none []engine.GroupInfo
	get(t, plain.URL+"/groups", &none)
	if len(none) != 0 {
		t.Fatalf("unshared /groups = %+v, want empty", none)
	}
}
