// Package server exposes the Seraph continuous query engine as an HTTP
// service — the "Graph Stream Processing engine with Seraph language
// support" the paper sketches as its implementation plan (Section 6).
//
// Endpoints:
//
//	POST   /queries             register a Seraph query (body: text)
//	GET    /queries             list registered queries with stats
//	GET    /queries/{name}      one query's stats
//	DELETE /queries/{name}      deregister
//	GET    /queries/{name}/results?since=N   buffered results after seq N
//	POST   /events              ingest NDJSON graph events
//	POST   /cypher              one-time query over the merged graph
//	GET    /checkpoint          download an engine checkpoint
//	GET    /healthz             liveness
//
// Results are buffered per query in a bounded ring; clients poll with
// the last sequence number they saw.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"seraph/internal/ast"
	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/ingest"
	"seraph/internal/parser"
	"seraph/internal/value"
)

func parseQuery(src string) (*ast.Query, error) { return parser.ParseQuery(src) }

// resultBufferSize bounds the per-query result ring.
const resultBufferSize = 1024

// Server is the HTTP facade over an engine.
type Server struct {
	mu      sync.Mutex
	engine  *engine.Engine
	merged  *graphstore.Store // merged graph for one-time /cypher queries
	buffers map[string]*resultRing
	events  int
}

// New returns a server wrapping a fresh engine configured with the
// given options (e.g. engine.WithParallelism to bound how many
// registered queries evaluate concurrently per ingested event batch).
func New(opts ...engine.Option) *Server {
	return &Server{
		engine:  engine.New(opts...),
		merged:  graphstore.New(),
		buffers: map[string]*resultRing{},
	}
}

// Restore returns a server whose engine resumes from a checkpoint
// (see /checkpoint). Each restored query gets a fresh result buffer.
// The merged /cypher graph is not part of engine checkpoints and starts
// empty.
func Restore(r io.Reader) (*Server, error) {
	s := &Server{
		merged:  graphstore.New(),
		buffers: map[string]*resultRing{},
	}
	eng, err := engine.Restore(r, func(name string) engine.Sink {
		ring := &resultRing{}
		s.buffers[name] = ring
		return ring.add
	})
	if err != nil {
		return nil, err
	}
	s.engine = eng
	return s, nil
}

// Engine exposes the wrapped engine (tests, embedding).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/queries/", s.handleQuery)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/cypher", s.handleCypher)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	return mux
}

type resultRing struct {
	mu    sync.Mutex
	seq   int64
	items []storedResult
}

type storedResult struct {
	Seq      int64            `json:"seq"`
	At       time.Time        `json:"at"`
	WinStart time.Time        `json:"win_start"`
	WinEnd   time.Time        `json:"win_end"`
	Op       string           `json:"op"`
	Columns  []string         `json:"columns"`
	Rows     []map[string]any `json:"rows"`
}

func (r *resultRing) add(res engine.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	sr := storedResult{
		Seq:      r.seq,
		At:       res.At,
		WinStart: res.Window.Start,
		WinEnd:   res.Window.End,
		Op:       res.Op.String(),
		Columns:  res.Table.Cols,
		Rows:     tableRows(res.Table),
	}
	r.items = append(r.items, sr)
	if len(r.items) > resultBufferSize {
		r.items = r.items[len(r.items)-resultBufferSize:]
	}
}

func (r *resultRing) after(seq int64) []storedResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []storedResult
	for _, it := range r.items {
		if it.Seq > seq {
			out = append(out, it)
		}
	}
	return out
}

func tableRows(t *eval.Table) []map[string]any {
	rows := make([]map[string]any, 0, t.Len())
	for i := range t.Rows {
		m := make(map[string]any, len(t.Cols))
		for j, c := range t.Cols {
			m[c] = jsonValue(t.Rows[i][j])
		}
		rows = append(rows, m)
	}
	return rows
}

// jsonValue converts an internal value to a JSON-friendly form.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindNumber:
		if v.IsInt() {
			return v.Int()
		}
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindDateTime:
		return v.DateTime().Format(time.RFC3339Nano)
	case value.KindDuration:
		return value.FormatDuration(v.Duration())
	case value.KindList:
		out := make([]any, len(v.List()))
		for i, e := range v.List() {
			out[i] = jsonValue(e)
		}
		return out
	case value.KindMap:
		out := make(map[string]any, len(v.Map()))
		for k, e := range v.Map() {
			out[k] = jsonValue(e)
		}
		return out
	case value.KindNode:
		n := v.Node()
		props := make(map[string]any, len(n.Props))
		for k, p := range n.Props {
			props[k] = jsonValue(p)
		}
		return map[string]any{"id": n.ID, "labels": n.Labels, "props": props}
	case value.KindRelationship:
		r := v.Relationship()
		props := make(map[string]any, len(r.Props))
		for k, p := range r.Props {
			props[k] = jsonValue(p)
		}
		return map[string]any{"id": r.ID, "start": r.StartID, "end": r.EndID, "type": r.Type, "props": props}
	case value.KindPath:
		p := v.Path()
		nodes := make([]any, len(p.Nodes))
		for i, n := range p.Nodes {
			nodes[i] = jsonValue(value.NewNode(n))
		}
		rels := make([]any, len(p.Rels))
		for i, r := range p.Rels {
			rels[i] = jsonValue(value.NewRelationship(r))
		}
		return map[string]any{"nodes": nodes, "rels": rels}
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleCheckpoint streams a checkpoint of the engine's durable state.
// Restore a server from it with server.Restore.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.engine.Checkpoint(w); err != nil {
		// Headers are already out; the body carries the error.
		fmt.Fprintf(w, "\n{\"error\": %q}\n", err.Error())
	}
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		type item struct {
			Name  string       `json:"name"`
			Stats engine.Stats `json:"stats"`
		}
		var out []item
		for _, q := range s.engine.Queries() {
			out = append(out, item{Name: q.Name(), Stats: q.Stats()})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		body := new(strings.Builder)
		if _, err := copyBody(body, r); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ring := &resultRing{}
		q, err := s.engine.RegisterSource(body.String(), ring.add)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.mu.Lock()
		s.buffers[q.Name()] = ring
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, map[string]any{"name": q.Name()})
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/queries/")
	parts := strings.Split(rest, "/")
	name := parts[0]
	if name == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query name"))
		return
	}
	switch {
	case len(parts) == 2 && parts[1] == "results" && r.Method == http.MethodGet:
		s.mu.Lock()
		ring, ok := s.buffers[name]
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("query %q not registered", name))
			return
		}
		since := int64(0)
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("invalid since: %v", err))
				return
			}
			since = n
		}
		results := ring.after(since)
		if results == nil {
			results = []storedResult{}
		}
		writeJSON(w, http.StatusOK, results)
	case len(parts) == 1 && r.Method == http.MethodGet:
		for _, q := range s.engine.Queries() {
			if q.Name() == name {
				writeJSON(w, http.StatusOK, map[string]any{"name": name, "stats": q.Stats()})
				return
			}
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("query %q not registered", name))
	case len(parts) == 1 && r.Method == http.MethodDelete:
		if err := s.engine.Deregister(name); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		s.mu.Lock()
		delete(s.buffers, name)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleEvents ingests NDJSON events: each line one graph event. Events
// are pushed to the engine (advancing the virtual clock) and merged
// into the one-time store.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		g, ts, err := ingest.Decode([]byte(line))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("event %d: %w", n+1, err))
			return
		}
		s.mu.Lock()
		err = ingest.MergeInto(s.merged, g)
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		if err := s.engine.Push(g, ts); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		if err := s.engine.AdvanceTo(ts); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		n++
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.events += n
	total := s.events
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ingested": n, "total": total})
}

type cypherRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
}

// handleCypher evaluates a one-time Cypher query against the merged
// graph (the Figure 2 style Neo4j-equivalent store).
func (s *Server) handleCypher(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var req cypherRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	params := map[string]value.Value{}
	for k, v := range req.Params {
		cv, err := jsonToValue(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("param %q: %w", k, err))
			return
		}
		params[k] = cv
	}
	out, err := s.execCypher(req.Query, params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": out.Cols,
		"rows":    tableRows(out),
	})
}

func (s *Server) execCypher(src string, params map[string]value.Value) (*eval.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	ctx := &eval.Ctx{
		Store:  s.merged,
		Params: params,
		Builtins: map[string]value.Value{
			"now": value.NewDateTime(s.engine.Now()),
		},
	}
	return eval.EvalQuery(ctx, q)
}

func jsonToValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case string:
		return value.NewString(x), nil
	case float64:
		if x == float64(int64(x)) {
			return value.NewInt(int64(x)), nil
		}
		return value.NewFloat(x), nil
	case []any:
		items := make([]value.Value, len(x))
		for i, e := range x {
			cv, err := jsonToValue(e)
			if err != nil {
				return value.Null, err
			}
			items[i] = cv
		}
		return value.NewList(items...), nil
	case map[string]any:
		m := make(map[string]value.Value, len(x))
		for k, e := range x {
			cv, err := jsonToValue(e)
			if err != nil {
				return value.Null, err
			}
			m[k] = cv
		}
		return value.NewMap(m), nil
	}
	return value.Null, fmt.Errorf("unsupported parameter type %T", v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

func copyBody(dst *strings.Builder, r *http.Request) (int64, error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var n int64
	for sc.Scan() {
		dst.WriteString(sc.Text())
		dst.WriteByte('\n')
		n += int64(len(sc.Text())) + 1
	}
	return n, sc.Err()
}
