// Package server exposes the Seraph continuous query engine as an HTTP
// service — the "Graph Stream Processing engine with Seraph language
// support" the paper sketches as its implementation plan (Section 6).
//
// Endpoints:
//
//	POST   /queries             register a Seraph query (body: text)
//	GET    /queries             list registered queries with stats
//	GET    /queries/{name}      one query's stats
//	DELETE /queries/{name}      deregister
//	GET    /queries/{name}/results?since=N   buffered results after seq N
//	GET    /groups              shared evaluation groups (multi-query optimization)
//	POST   /events              ingest NDJSON graph events
//	POST   /cypher              one-time query over the merged graph
//	GET    /checkpoint          download an engine checkpoint
//	GET    /metrics             Prometheus text-format metrics
//	GET    /debug/pprof/*       profiling (opt-in via EnablePprof)
//	GET    /healthz             liveness
//
// Results are buffered per query in a bounded ring; clients poll with
// the last sequence number they saw. Overflowed (dropped) results are
// counted per ring and surfaced on GET /queries/{name} and /metrics so
// a slow poller can detect the gap.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"seraph/internal/ast"
	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/ingest"
	"seraph/internal/metrics"
	"seraph/internal/parser"
	"seraph/internal/queue"
	"seraph/internal/value"
)

func parseQuery(src string) (*ast.Query, error) { return parser.ParseQuery(src) }

// resultBufferSize bounds the per-query result ring.
const resultBufferSize = 1024

// maxRequestBody bounds the /queries and /cypher request bodies (the
// NDJSON /events stream is unbounded by design; its per-line size is
// bounded by the scanner buffer instead).
const maxRequestBody = 1 << 20

// Server is the HTTP facade over an engine.
type Server struct {
	mu      sync.Mutex
	engine  *engine.Engine
	merged  *graphstore.Store // merged graph for one-time /cypher queries
	buffers map[string]*resultRing
	events  int
	pprof   bool

	log        *slog.Logger
	reg        *metrics.Registry // the engine's registry; nil when disabled
	ingested   *metrics.Counter  // seraph_ingest_events_total
	ingestErrs *metrics.Counter  // seraph_ingest_errors_total

	// Overload behaviour (see overload.go): retryAfter is the hint on
	// 429 responses; iq, when non-nil, routes POST /events through a
	// bounded in-process queue instead of pushing synchronously.
	retryAfter time.Duration
	iq         *ingestQueue
}

// New returns a server wrapping a fresh engine configured with the
// given options (e.g. engine.WithParallelism to bound how many
// registered queries evaluate concurrently per ingested event batch).
// The engine records into a server-owned metrics registry served on
// GET /metrics; pass engine.WithMetrics to override (nil disables).
func New(opts ...engine.Option) *Server {
	s := &Server{
		merged:  graphstore.New(),
		buffers: map[string]*resultRing{},
	}
	base := []engine.Option{
		engine.WithMetrics(metrics.NewRegistry()),
		engine.WithLogger(slog.Default()),
	}
	s.engine = engine.New(append(base, opts...)...)
	s.finishInit()
	return s
}

// Restore returns a server whose engine resumes from a checkpoint
// (see /checkpoint). Each restored query gets a fresh result buffer.
// The merged /cypher graph is not part of engine checkpoints and starts
// empty. Extra engine options (parallelism, metrics, …) are applied on
// top of the checkpoint-derived configuration.
func Restore(r io.Reader, opts ...engine.Option) (*Server, error) {
	s := &Server{
		merged:  graphstore.New(),
		buffers: map[string]*resultRing{},
	}
	extra := append([]engine.Option{
		engine.WithMetrics(metrics.NewRegistry()),
		engine.WithLogger(slog.Default()),
	}, opts...)
	eng, err := engine.Restore(r, func(name string) engine.Sink {
		// The engine (and its registry) is not assigned yet while
		// Restore runs; finishInit binds each ring's counter afterwards.
		ring := &resultRing{}
		s.buffers[name] = ring
		return ring.add
	}, extra...)
	if err != nil {
		return nil, err
	}
	s.engine = eng
	s.finishInit()
	return s, nil
}

// finishInit wires the server-level instruments to the engine's
// registry (which may be nil when metrics are disabled).
func (s *Server) finishInit() {
	s.log = slog.Default()
	s.retryAfter = time.Second
	s.reg = s.engine.Metrics()
	s.ingested = s.reg.Counter("seraph_ingest_events_total", "Events applied via POST /events.")
	s.ingestErrs = s.reg.Counter("seraph_ingest_errors_total", "POST /events requests that failed mid-batch.")
	for name, ring := range s.buffers {
		s.bindRing(name, ring)
	}
}

// bindRing attaches a result ring to the server's registry and logger,
// registering its dropped-results counter eagerly so the family shows
// up on /metrics (at zero) before any overflow happens.
func (s *Server) bindRing(name string, r *resultRing) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.name = name
	r.server = s
	r.dropCtr = s.reg.Counter("seraph_result_ring_dropped_total",
		"Buffered results evicted before any client fetched them.",
		metrics.L("query", name))
}

// Engine exposes the wrapped engine (tests, embedding).
func (s *Server) Engine() *engine.Engine { return s.engine }

// SetLogger replaces the server's structured logger (default
// slog.Default).
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// EnablePprof mounts net/http/pprof under /debug/pprof/ on handlers
// built after the call. Profiling endpoints can leak operational detail,
// so they are opt-in.
func (s *Server) EnablePprof() { s.pprof = true }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/queries/", s.handleQuery)
	mux.HandleFunc("/groups", s.handleGroups)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/cypher", s.handleCypher)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.Handle("/metrics", s.reg.Handler())
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// HTTPServer wraps Handler in an http.Server with production defaults:
// header/read/write timeouts, a bounded header size, and an idle
// timeout. Pair it with a signal-driven Shutdown (see cmd/seraph-server)
// so in-flight ingests drain instead of being killed.
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute, // /events may stream large batches
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

type resultRing struct {
	mu      sync.Mutex
	seq     int64
	dropped int64
	items   []storedResult

	// name/server resolve the per-ring dropped-results counter; the
	// counter is created lazily so rings built during engine.Restore
	// (before the registry is reachable) still report drops.
	name    string
	server  *Server
	dropCtr *metrics.Counter
}

// ringInfo is the /queries/{name} view of a ring: the newest and oldest
// retained sequence numbers plus the overflow count. A client that
// polled up to seq S detects loss when lowest_seq > S+1 or dropped grew.
type ringInfo struct {
	LatestSeq int64 `json:"latest_seq"`
	LowestSeq int64 `json:"lowest_seq"`
	Buffered  int   `json:"buffered"`
	Dropped   int64 `json:"dropped"`
}

func (r *resultRing) info() ringInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := ringInfo{LatestSeq: r.seq, Buffered: len(r.items), Dropped: r.dropped}
	if len(r.items) > 0 {
		info.LowestSeq = r.items[0].Seq
	}
	return info
}

type storedResult struct {
	Seq      int64            `json:"seq"`
	At       time.Time        `json:"at"`
	WinStart time.Time        `json:"win_start"`
	WinEnd   time.Time        `json:"win_end"`
	Op       string           `json:"op"`
	Columns  []string         `json:"columns"`
	Rows     []map[string]any `json:"rows"`
	// Skipped marks an instant shed by overload protection: the query
	// was not evaluated there, so the empty row set means "unknown",
	// not "no matches".
	Skipped bool `json:"skipped,omitempty"`
}

func (r *resultRing) add(res engine.Result) {
	table := res.Table
	if table == nil {
		// Shed results may carry no table; never let a slow consumer
		// path panic on one.
		table = &eval.Table{}
	}
	r.mu.Lock()
	r.seq++
	sr := storedResult{
		Seq:      r.seq,
		At:       res.At,
		WinStart: res.Window.Start,
		WinEnd:   res.Window.End,
		Op:       res.Op.String(),
		Columns:  table.Cols,
		Rows:     tableRows(table),
		Skipped:  res.Skipped,
	}
	r.items = append(r.items, sr)
	var evicted int
	if len(r.items) > resultBufferSize {
		evicted = len(r.items) - resultBufferSize
		r.dropped += int64(evicted)
		r.items = append(r.items[:0:0], r.items[evicted:]...)
	}
	ctr, srv, name := r.dropCtr, r.server, r.name
	r.mu.Unlock()
	if evicted > 0 {
		ctr.Add(int64(evicted))
		if srv != nil {
			srv.log.Warn("result ring overflow: slow poller lost results",
				"query", name, "dropped", evicted)
		}
	}
}

func (r *resultRing) after(seq int64) []storedResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []storedResult
	for _, it := range r.items {
		if it.Seq > seq {
			out = append(out, it)
		}
	}
	return out
}

func tableRows(t *eval.Table) []map[string]any {
	rows := make([]map[string]any, 0, t.Len())
	for i := range t.Rows {
		m := make(map[string]any, len(t.Cols))
		for j, c := range t.Cols {
			m[c] = jsonValue(t.Rows[i][j])
		}
		rows = append(rows, m)
	}
	return rows
}

// jsonValue converts an internal value to a JSON-friendly form.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindNumber:
		if v.IsInt() {
			return v.Int()
		}
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindDateTime:
		return v.DateTime().Format(time.RFC3339Nano)
	case value.KindDuration:
		return value.FormatDuration(v.Duration())
	case value.KindList:
		out := make([]any, len(v.List()))
		for i, e := range v.List() {
			out[i] = jsonValue(e)
		}
		return out
	case value.KindMap:
		out := make(map[string]any, len(v.Map()))
		for k, e := range v.Map() {
			out[k] = jsonValue(e)
		}
		return out
	case value.KindNode:
		n := v.Node()
		props := make(map[string]any, len(n.Props))
		for k, p := range n.Props {
			props[k] = jsonValue(p)
		}
		return map[string]any{"id": n.ID, "labels": n.Labels, "props": props}
	case value.KindRelationship:
		r := v.Relationship()
		props := make(map[string]any, len(r.Props))
		for k, p := range r.Props {
			props[k] = jsonValue(p)
		}
		return map[string]any{"id": r.ID, "start": r.StartID, "end": r.EndID, "type": r.Type, "props": props}
	case value.KindPath:
		p := v.Path()
		nodes := make([]any, len(p.Nodes))
		for i, n := range p.Nodes {
			nodes[i] = jsonValue(value.NewNode(n))
		}
		rels := make([]any, len(p.Rels))
		for i, r := range p.Rels {
			rels[i] = jsonValue(value.NewRelationship(r))
		}
		return map[string]any{"nodes": nodes, "rels": rels}
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleCheckpoint streams a checkpoint of the engine's durable state.
// Restore a server from it with server.Restore.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.engine.Checkpoint(w); err != nil {
		// Headers are already out; the body carries the error.
		fmt.Fprintf(w, "\n{\"error\": %q}\n", err.Error())
	}
}

// handleGroups lists the live shared evaluation groups (multi-query
// optimization): canonical fingerprint, member queries, and whether the
// group runs delta-maintained. Empty unless the engine was built with
// WithSharedEval (server flag -mqo).
func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	groups := s.engine.SharedGroups()
	if groups == nil {
		groups = []engine.GroupInfo{}
	}
	writeJSON(w, http.StatusOK, groups)
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		type item struct {
			Name  string       `json:"name"`
			Stats engine.Stats `json:"stats"`
			// Shared evaluation group (multi-query optimization); empty
			// when the query evaluates unshared.
			Group     string `json:"group,omitempty"`
			GroupSize int    `json:"group_size,omitempty"`
		}
		var out []item
		for _, q := range s.engine.Queries() {
			gid, gn := q.SharedGroup()
			out = append(out, item{Name: q.Name(), Stats: q.Stats(), Group: gid, GroupSize: gn})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		body := new(strings.Builder)
		if _, err := copyBody(body, r); err != nil {
			httpError(w, bodyErrStatus(err), err)
			return
		}
		ring := &resultRing{}
		q, err := s.engine.RegisterSource(body.String(), ring.add)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.bindRing(q.Name(), ring)
		s.mu.Lock()
		s.buffers[q.Name()] = ring
		s.mu.Unlock()
		reg := q.Registration()
		s.log.Info("query registered",
			"query", q.Name(), "within", reg.MaxWithin(), "stream", q.Stream())
		writeJSON(w, http.StatusCreated, map[string]any{"name": q.Name()})
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// bodyErrStatus maps request-body read failures to a status: 413 when
// the MaxBytesReader limit tripped, 400 otherwise.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/queries/")
	parts := strings.Split(rest, "/")
	name := parts[0]
	if name == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query name"))
		return
	}
	switch {
	case len(parts) == 2 && parts[1] == "results" && r.Method == http.MethodGet:
		s.mu.Lock()
		ring, ok := s.buffers[name]
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("query %q not registered", name))
			return
		}
		since := int64(0)
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("invalid since: %v", err))
				return
			}
			since = n
		}
		results := ring.after(since)
		if results == nil {
			results = []storedResult{}
		}
		writeJSON(w, http.StatusOK, results)
	case len(parts) == 1 && r.Method == http.MethodGet:
		for _, q := range s.engine.Queries() {
			if q.Name() == name {
				out := map[string]any{"name": name, "stats": q.Stats()}
				if gid, gn := q.SharedGroup(); gid != "" {
					out["group"] = gid
					out["group_size"] = gn
				}
				if lat := q.EvalLatency(); lat.Count > 0 {
					out["latency_ms"] = map[string]any{
						"count": lat.Count,
						"mean":  ms(lat.Mean()),
						"p50":   ms(lat.P50),
						"p95":   ms(lat.P95),
						"p99":   ms(lat.P99),
					}
				}
				s.mu.Lock()
				ring := s.buffers[name]
				s.mu.Unlock()
				if ring != nil {
					out["results"] = ring.info()
				}
				writeJSON(w, http.StatusOK, out)
				return
			}
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("query %q not registered", name))
	case len(parts) == 1 && r.Method == http.MethodDelete:
		if err := s.engine.Deregister(name); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		s.mu.Lock()
		delete(s.buffers, name)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleEvents ingests NDJSON events: each line one graph event. Events
// are pushed to the engine (advancing the virtual clock) and merged
// into the one-time store.
//
// Ingestion is line-by-line, so a mid-batch failure leaves the events
// before the bad line applied. The applied count is recorded
// unconditionally — s.events and the engine always agree — and error
// responses carry "ingested"/"total" so the client knows exactly how
// far the batch got and can resume after the failing line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	iq := s.iq
	s.mu.Unlock()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	applied := 0 // events fully applied to the merged store and engine
	lineNo := 0
	commit := func() int {
		s.mu.Lock()
		s.events += applied
		total := s.events
		s.mu.Unlock()
		s.ingested.Add(int64(applied))
		return total
	}
	fail := func(status int, err error) {
		total := commit()
		s.ingestErrs.Inc()
		s.log.Error("ingest failed mid-batch",
			"line", lineNo, "ingested", applied, "err", err)
		writeJSON(w, status, map[string]any{
			"error":    err.Error(),
			"ingested": applied,
			"total":    total,
		})
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lineNo++
		g, ts, err := ingest.Decode([]byte(line))
		if err != nil {
			fail(http.StatusBadRequest, fmt.Errorf("event %d: %w", lineNo, err))
			return
		}
		s.mu.Lock()
		err = ingest.MergeInto(s.merged, g)
		s.mu.Unlock()
		if err != nil {
			fail(http.StatusConflict, fmt.Errorf("event %d: %w", lineNo, err))
			return
		}
		if iq != nil {
			// Queue mode: enqueue the raw event; the background
			// connector pushes and evaluates. A full bounded topic is
			// the backpressure signal.
			if _, err := iq.broker.Produce(ingestTopic, "", []byte(line), ts); err != nil {
				if queue.IsTransient(err) {
					total := commit()
					s.rejectBusy(w, applied, total, fmt.Errorf("event %d: %w", lineNo, err))
					return
				}
				fail(http.StatusInternalServerError, fmt.Errorf("event %d: %w", lineNo, err))
				return
			}
			applied++
			continue
		}
		if err := s.engine.Push(g, ts); err != nil {
			if engine.IsBusy(err) {
				total := commit()
				s.rejectBusy(w, applied, total, fmt.Errorf("event %d: %w", lineNo, err))
				return
			}
			fail(http.StatusConflict, fmt.Errorf("event %d: %w", lineNo, err))
			return
		}
		// The event is in the engine now: count it even if evaluation
		// below fails, so the reported count matches engine state.
		applied++
		if err := s.engine.AdvanceTo(ts); err != nil {
			fail(http.StatusInternalServerError, err)
			return
		}
	}
	if err := sc.Err(); err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	total := commit()
	writeJSON(w, http.StatusOK, map[string]any{"ingested": applied, "total": total})
}

type cypherRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
}

// handleCypher evaluates a one-time Cypher query against the merged
// graph (the Figure 2 style Neo4j-equivalent store).
func (s *Server) handleCypher(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req cypherRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrStatus(err), err)
		return
	}
	params := map[string]value.Value{}
	for k, v := range req.Params {
		cv, err := jsonToValue(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("param %q: %w", k, err))
			return
		}
		params[k] = cv
	}
	out, err := s.execCypher(req.Query, params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": out.Cols,
		"rows":    tableRows(out),
	})
}

func (s *Server) execCypher(src string, params map[string]value.Value) (*eval.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	ctx := &eval.Ctx{
		Store:  s.merged,
		Params: params,
		Builtins: map[string]value.Value{
			"now": value.NewDateTime(s.engine.Now()),
		},
	}
	return eval.EvalQuery(ctx, q)
}

func jsonToValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case string:
		return value.NewString(x), nil
	case float64:
		if x == float64(int64(x)) {
			return value.NewInt(int64(x)), nil
		}
		return value.NewFloat(x), nil
	case []any:
		items := make([]value.Value, len(x))
		for i, e := range x {
			cv, err := jsonToValue(e)
			if err != nil {
				return value.Null, err
			}
			items[i] = cv
		}
		return value.NewList(items...), nil
	case map[string]any:
		m := make(map[string]value.Value, len(x))
		for k, e := range x {
			cv, err := jsonToValue(e)
			if err != nil {
				return value.Null, err
			}
			m[k] = cv
		}
		return value.NewMap(m), nil
	}
	return value.Null, fmt.Errorf("unsupported parameter type %T", v)
}

// ms renders a duration as fractional milliseconds for JSON payloads.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

func copyBody(dst *strings.Builder, r *http.Request) (int64, error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var n int64
	for sc.Scan() {
		dst.WriteString(sc.Text())
		dst.WriteByte('\n')
		n += int64(len(sc.Text())) + 1
	}
	return n, sc.Err()
}
