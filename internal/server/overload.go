package server

// overload.go is the HTTP facade's overload behaviour: ErrBusy from
// engine admission control surfaces as 429 + Retry-After, and
// EnableIngestQueue switches POST /events from synchronous push to an
// in-process bounded queue drained by a background connector with
// retry, backoff, and dead-letter quarantine.

import (
	"net/http"
	"strconv"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/queue"
)

// ingestTopic and ingestDLQTopic are the queue-mode topic names; the
// DLQ holds poison events (undecodable, out-of-order) with the cause
// as the record key.
const (
	ingestTopic    = "events"
	ingestDLQTopic = "events-dlq"
)

// SetRetryAfter configures the Retry-After hint attached to 429
// responses (default 1s). Clients should back off at least this long
// before retrying a rejected batch.
func (s *Server) SetRetryAfter(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retryAfter = d
}

// retryAfterSeconds renders the hint in whole seconds, minimum 1, as
// the Retry-After header requires.
func (s *Server) retryAfterSeconds() string {
	s.mu.Lock()
	d := s.retryAfter
	s.mu.Unlock()
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// rejectBusy writes a 429 with the Retry-After hint. The caller
// supplies the ingested/total accounting through fail-style fields.
func (s *Server) rejectBusy(w http.ResponseWriter, applied, total int, err error) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":    err.Error(),
		"ingested": applied,
		"total":    total,
	})
}

// ingestQueue is the queue-mode machinery: a bounded in-process topic
// fed by POST /events and drained by a connector goroutine.
type ingestQueue struct {
	broker *queue.Broker
	conn   *ingest.Connector
	done   chan struct{}

	// Durable mode (see durable.go): ck checkpoints the engine every
	// ckEvery delivered events; sinceCk counts deliveries since the
	// last save (drain-goroutine only).
	ck      *engine.Checkpointer
	ckEvery int
	sinceCk int
}

// EnableIngestQueue switches POST /events to asynchronous ingestion:
// events are validated, merged into the one-time store, then enqueued
// on a bounded in-process topic (capacity records, full-queue policy
// as given) instead of being pushed synchronously. A background
// connector drains the topic into the engine with backoff on transient
// rejection and quarantines poison events (for example out-of-order
// timestamps from interleaved clients) to the events-dlq topic. With
// PolicyReject, a full queue turns POST /events into 429 + Retry-After.
//
// Call before serving traffic, and Close on shutdown to drain the
// queue. Enabling twice is an error.
func (s *Server) EnableIngestQueue(capacity int, policy queue.FullPolicy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.iq != nil {
		return errBusyQueueExists
	}
	b := queue.NewBroker()
	if err := b.CreateTopicWith(ingestTopic, queue.TopicConfig{
		Partitions: 1,
		Capacity:   capacity,
		Policy:     policy,
	}); err != nil {
		return err
	}
	conn, err := ingest.NewConnector(b, ingestTopic, s.engine.Push,
		ingest.WithDeadLetter(ingestDLQTopic),
		ingest.WithSinkRetry(8, time.Millisecond, 250*time.Millisecond),
		ingest.WithIngestMetrics(s.reg),
	)
	if err != nil {
		return err
	}
	iq := &ingestQueue{broker: b, conn: conn, done: make(chan struct{})}
	s.iq = iq
	go s.drainIngestQueue(iq)
	return nil
}

var errBusyQueueExists = queueModeError("server: ingest queue already enabled")

type queueModeError string

func (e queueModeError) Error() string { return string(e) }

// drainIngestQueue pumps the bounded topic into the engine until the
// broker closes. Deliveries advance the virtual clock so evaluations
// fire; transient overload (admission control past the connector's
// retry budget) backs off and retries rather than dropping — the
// bounded topic is what pushes back on producers meanwhile.
func (s *Server) drainIngestQueue(iq *ingestQueue) {
	defer close(iq.done)
	for {
		n, err := iq.conn.PollBlocking(512)
		if err != nil {
			if !queue.IsTransient(err) {
				s.log.Error("ingest queue delivery failed", "err", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n > 0 {
			if aerr := s.engine.AdvanceTo(s.engine.Now()); aerr != nil {
				s.log.Error("evaluation failed during queued ingest", "err", aerr)
			}
			if iq.ck != nil {
				iq.sinceCk += n
				if iq.sinceCk >= iq.ckEvery {
					s.checkpointDurable(iq)
					iq.sinceCk = 0
				}
			}
		}
		if n == 0 && err == nil {
			return // broker closed and fully drained
		}
	}
}

// IngestQueueStats exposes the queue-mode counters for monitoring and
// tests: broker-side topic stats plus the connector's quarantine
// count. ok is false when queue mode is not enabled.
func (s *Server) IngestQueueStats() (st queue.TopicStats, deadlettered int64, ok bool) {
	s.mu.Lock()
	iq := s.iq
	s.mu.Unlock()
	if iq == nil {
		return queue.TopicStats{}, 0, false
	}
	st, _ = iq.broker.Stats(ingestTopic)
	return st, iq.conn.Deadlettered(), true
}

// Close shuts down the ingest queue (if enabled), draining buffered
// events into the engine before returning. Safe to call when queue
// mode is off.
func (s *Server) Close() error {
	s.mu.Lock()
	iq := s.iq
	s.iq = nil
	s.mu.Unlock()
	if iq == nil {
		return nil
	}
	iq.broker.Close()
	<-iq.done
	if iq.ck != nil {
		// Final checkpoint after the drain goroutine has exited, so the
		// next boot recovers without replaying the whole retained log.
		s.checkpointDurable(iq)
		return iq.broker.CloseDurable()
	}
	return nil
}
