package server

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/wal"
)

const durableTestQuery = `
REGISTER QUERY total STARTING AT 2026-07-06T10:00:00
{ MATCH (n:N) WITHIN PT10S
  EMIT count(*) AS c SNAPSHOT EVERY PT1S }`

// waitElements polls until the engine's first query has seen want
// elements (the drain goroutine applies queued events asynchronously).
func waitElements(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		qs := srv.Engine().Queries()
		if len(qs) > 0 && qs[0].Stats().ElementsSeen >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: want %d elements", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchCounts returns the (at, c) pairs of every non-skipped result
// the server has buffered for the query.
func fetchCounts(t *testing.T, url string) map[string]float64 {
	t.Helper()
	var results []map[string]any
	get(t, url+"/queries/total/results", &results)
	out := map[string]float64{}
	for _, r := range results {
		if skipped, _ := r["skipped"].(bool); skipped {
			continue
		}
		rows, _ := r["rows"].([]any)
		if len(rows) == 0 {
			continue
		}
		out[r["at"].(string)] = rows[0].(map[string]any)["c"].(float64)
	}
	return out
}

// TestDurableServerRestart is the end-to-end durability scenario: a
// server opened on a data directory ingests events through the logged
// queue, restarts, recovers its registered query mid-schedule from the
// checkpoint directory, resumes ingestion at the manifest offsets, and
// the union of results before and after the restart matches an
// uninterrupted in-memory run over the same events.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{
		Dir:             dir,
		Fsync:           wal.FsyncAlways,
		CheckpointEvery: 4, // force a mid-stream checkpoint before Close
	}
	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

	srv, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if resp, m := post(t, ts.URL+"/queries", durableTestQuery); resp.StatusCode != 201 {
		t.Fatalf("register: %d %v", resp.StatusCode, m)
	}
	for i := 0; i < 6; i++ {
		if resp, m := post(t, ts.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second))); resp.StatusCode != 200 {
			t.Fatalf("ingest %d: %d %v", i, resp.StatusCode, m)
		}
	}
	waitElements(t, srv, 6)
	before := fetchCounts(t, ts.URL)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same directory: the query must come back registered and
	// mid-schedule, without the client re-POSTing it.
	srv2, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var list []map[string]any
	get(t, ts2.URL+"/queries", &list)
	if len(list) != 1 || list[0]["name"] != "total" {
		t.Fatalf("recovered queries: %v", list)
	}
	seen0 := srv2.Engine().Queries()[0].Stats().ElementsSeen
	for i := 6; i < 9; i++ {
		if resp, m := post(t, ts2.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second))); resp.StatusCode != 200 {
			t.Fatalf("ingest %d after restart: %d %v", i, resp.StatusCode, m)
		}
	}
	waitElements(t, srv2, seen0+3)
	after := fetchCounts(t, ts2.URL)

	// No evaluation instant may fire on both sides of the restart
	// (double emission), and none may be lost: the union must equal an
	// uninterrupted run over the same nine events.
	combined := map[string]float64{}
	for at, c := range before {
		combined[at] = c
	}
	for at, c := range after {
		if prev, dup := combined[at]; dup {
			t.Errorf("instant %s emitted on both sides of the restart (%v, %v)", at, prev, c)
		}
		combined[at] = c
	}

	oracleCounts := map[string]float64{}
	oracle := engine.New()
	if _, err := oracle.RegisterSource(durableTestQuery, func(r engine.Result) {
		if r.Skipped || r.Table == nil || len(r.Table.Rows) == 0 {
			return
		}
		oracleCounts[r.At.UTC().Format(time.RFC3339Nano)] = float64(r.Table.Get(0, "c").Int())
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		g, gt := decodeEvent(t, eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second)))
		if err := oracle.Push(g, gt); err != nil {
			t.Fatal(err)
		}
	}
	if err := oracle.AdvanceTo(oracle.Now()); err != nil {
		t.Fatal(err)
	}
	if len(combined) != len(oracleCounts) {
		t.Fatalf("recovered run emitted %d instants, oracle %d\nrecovered: %v\noracle: %v",
			len(combined), len(oracleCounts), combined, oracleCounts)
	}
	for at, want := range oracleCounts {
		if got, ok := combined[at]; !ok || got != want {
			t.Errorf("instant %s: got %v (present=%v), oracle %v", at, got, ok, want)
		}
	}
}

// TestDurableServerCompactsLog: checkpoints prune the event log, so a
// long-lived directory does not retain the full stream. After two
// checkpoint cycles the topic's first retained offset must have moved
// past zero, and recovery still works from the shortened log.
func TestDurableServerCompactsLog(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{
		Dir:             dir,
		Fsync:           wal.FsyncAlways,
		CheckpointEvery: 4,
		SegmentBytes:    256, // rotate quickly so compaction can delete
	}
	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

	srv, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if resp, _ := post(t, ts.URL+"/queries", durableTestQuery); resp.StatusCode != 201 {
		t.Fatal("register failed")
	}
	// Enough events for multiple WAL segments and checkpoint cycles.
	for i := 0; i < 32; i++ {
		if resp, _ := post(t, ts.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second))); resp.StatusCode != 200 {
			t.Fatalf("ingest %d failed", i)
		}
	}
	waitElements(t, srv, 32)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := wal.Open(filepath.Join(dir, "queue", "wal", ingestTopic, "p0"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, next := l.FirstIndex(), l.NextIndex()
	l.Close()
	if first == 0 {
		t.Errorf("log never compacted: first retained offset still 0 (next %d)", next)
	}

	// Recovery still works from the shortened log.
	srv2, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if len(srv2.Engine().Queries()) != 1 {
		t.Fatalf("query not recovered after compaction")
	}
}

// TestDurableRejectsRestoreConflicts: engine options explicitly passed
// to OpenDurable that contradict the recovered checkpoint's
// configuration must fail the open, exactly as engine.Restore does.
func TestDurableRejectsRestoreConflicts(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Dir: dir, Fsync: wal.FsyncAlways}
	srv, err := OpenDurable(cfg, engine.WithDeltaEval(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Engine().RegisterSource(durableTestQuery, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(cfg, engine.WithDeltaEval(false)); err == nil {
		t.Fatal("conflicting delta-eval option accepted")
	} else if want := "delta evaluation"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	// Matching or absent options reopen fine.
	srv2, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestDurableQueueBackpressure: the durable topic honours the bounded
// capacity/policy exactly like the in-memory ingest queue.
func TestDurableQueueBackpressure(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenDurable(DurableConfig{
		Dir:           dir,
		Fsync:         wal.FsyncAlways,
		QueueCapacity: 2,
		QueuePolicy:   queue.PolicyReject,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	if _, err := srv.Engine().RegisterSource(`
REGISTER QUERY stall STARTING AT 2026-07-06T10:00:00
{ MATCH (n:N) WITHIN PT10S
  EMIT n.name AS name SNAPSHOT EVERY PT1S }`, func(engine.Result) {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}); err != nil {
		t.Fatal(err)
	}
	defer close(release)

	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	if resp, _ := post(t, ts.URL+"/events", eventJSON(t, 1, base)); resp.StatusCode != 200 {
		t.Fatal("first event rejected")
	}
	<-entered
	got429 := false
	for i := 1; i <= 6 && !got429; i++ {
		resp, _ := post(t, ts.URL+"/events", eventJSON(t, int64(i+1), base.Add(time.Duration(i)*time.Second)))
		if resp.StatusCode == 429 {
			got429 = true
		}
	}
	if !got429 {
		t.Error("bounded durable queue never rejected")
	}
}

// decodeEvent parses one NDJSON event line back into a graph + time
// for direct engine pushes (the oracle side of restart tests).
func decodeEvent(t *testing.T, line string) (*pg.Graph, time.Time) {
	t.Helper()
	g, ts, err := ingest.Decode([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	return g, ts
}
