package server

// Observability & hardening regression tests: partial-batch ingest
// accounting, result-ring overflow tracking, the /metrics endpoint, and
// graceful shutdown draining an in-flight /events request.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/workload"
)

// TestPartialBatchIngestAccounting: a mid-batch decode failure must
// report how many events were actually applied, and the server's total
// must match — engine state and the counter may not diverge (the
// original bug: the 4xx path returned without updating s.events).
func TestPartialBatchIngestAccounting(t *testing.T) {
	srv := New()
	ts := newHTTPTestServer(t, srv)

	lines := strings.Split(strings.TrimSpace(figure1NDJSON(t)), "\n")
	if len(lines) < 4 {
		t.Fatalf("need ≥4 events, got %d", len(lines))
	}
	// Two good events, then garbage, then more good events that must
	// NOT be applied.
	batch := lines[0] + "\n" + lines[1] + "\nnot json\n" + lines[2] + "\n" + lines[3] + "\n"
	resp, m := post(t, ts.URL+"/events", batch)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if m["ingested"].(float64) != 2 {
		t.Fatalf("error response ingested = %v, want 2", m["ingested"])
	}
	if m["total"].(float64) != 2 {
		t.Fatalf("error response total = %v, want 2", m["total"])
	}
	if m["error"] == nil {
		t.Fatal("error response missing error text")
	}
	srv.mu.Lock()
	events := srv.events
	srv.mu.Unlock()
	if events != 2 {
		t.Fatalf("s.events = %d, want 2", events)
	}

	// The client resumes after the failing line; totals line up.
	resp, m = post(t, ts.URL+"/events", strings.Join(lines[2:], "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %d", resp.StatusCode)
	}
	if m["total"].(float64) != float64(len(lines)) {
		t.Fatalf("total = %v, want %d", m["total"], len(lines))
	}
	if srv.ingestErrs.Value() != 1 {
		t.Errorf("ingest error counter = %d, want 1", srv.ingestErrs.Value())
	}
	if srv.ingested.Value() != int64(len(lines)) {
		t.Errorf("ingested counter = %d, want %d", srv.ingested.Value(), len(lines))
	}
}

// TestResultRingOverflowDropped: once the ring wraps, the dropped
// counter and the lowest retained seq expose the gap to slow pollers.
func TestResultRingOverflowDropped(t *testing.T) {
	srv := New()
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ring := &resultRing{}
	srv.bindRing("q", ring)
	const extra = 30
	for i := 0; i < resultBufferSize+extra; i++ {
		ring.add(engine.Result{Query: "q", Table: &eval.Table{Cols: []string{"x"}}})
	}
	info := ring.info()
	if info.Dropped != extra {
		t.Errorf("dropped = %d, want %d", info.Dropped, extra)
	}
	if info.LowestSeq != extra+1 {
		t.Errorf("lowest seq = %d, want %d", info.LowestSeq, extra+1)
	}
	if info.LatestSeq != resultBufferSize+extra {
		t.Errorf("latest seq = %d", info.LatestSeq)
	}
	if info.Buffered != resultBufferSize {
		t.Errorf("buffered = %d", info.Buffered)
	}
	var buf strings.Builder
	if err := srv.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `seraph_result_ring_dropped_total{query="q"} 30`) {
		t.Errorf("dropped counter missing from exposition:\n%s", buf.String())
	}
}

// TestMetricsEndpoint drives the full pipeline and asserts the
// acceptance-criteria families appear on GET /metrics.
func TestMetricsEndpoint(t *testing.T) {
	srv := New()
	ts := newHTTPTestServer(t, srv)

	if resp, m := post(t, ts.URL+"/queries", workload.StudentTrickQuery); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, m)
	}
	if resp, m := post(t, ts.URL+"/events", figure1NDJSON(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %v", resp.StatusCode, m)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`seraph_query_eval_seconds_bucket{query="student_trick",le=`,
		`seraph_query_eval_seconds_count{query="student_trick"} 12`,
		`seraph_query_rows_emitted_total{query="student_trick"}`,
		`seraph_snapshot_cache_hits_total{query="student_trick"}`,
		`seraph_snapshot_cache_misses_total{query="student_trick"}`,
		"seraph_scheduler_queue_depth",
		`seraph_result_ring_dropped_total{query="student_trick"} 0`,
		"seraph_ingest_events_total 5",
		"seraph_ingest_errors_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The per-query endpoint carries the new figures too.
	var q map[string]any
	get(t, ts.URL+"/queries/student_trick", &q)
	stats := q["stats"].(map[string]any)
	if stats["Evaluations"].(float64) != 12 {
		t.Fatalf("stats: %v", stats)
	}
	if stats["EvalNanos"].(float64) <= 0 {
		t.Errorf("EvalNanos missing: %v", stats)
	}
	lat := q["latency_ms"].(map[string]any)
	if lat["count"].(float64) != 12 || lat["p95"].(float64) <= 0 {
		t.Errorf("latency_ms: %v", lat)
	}
	results := q["results"].(map[string]any)
	if results["latest_seq"].(float64) != 12 || results["dropped"].(float64) != 0 {
		t.Errorf("results info: %v", results)
	}
}

// TestGracefulShutdownDrainsInflight: Shutdown must let a streaming
// /events request finish (all its events applied, 200 returned) while
// refusing new connections — the original server killed in-flight
// ingests on SIGTERM.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	srv := New()
	hs := srv.HTTPServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	lines := strings.Split(strings.TrimSpace(figure1NDJSON(t)), "\n")
	pr, pw := io.Pipe()
	type postResult struct {
		resp *http.Response
		body map[string]any
		err  error
	}
	posted := make(chan postResult, 1)
	go func() {
		resp, err := http.Post(url+"/events", "application/x-ndjson", pr)
		pres := postResult{resp: resp, err: err}
		if err == nil {
			defer resp.Body.Close()
			_ = json.NewDecoder(resp.Body).Decode(&pres.body)
		}
		posted <- pres
	}()

	// First event in; wait until the handler has pushed it (the engine
	// clock moves on Push).
	if _, err := io.WriteString(pw, lines[0]+"\n"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Engine().Now().IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("handler never consumed the first event")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shutdown with the request still streaming.
	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- hs.Shutdown(ctx)
	}()

	// The listener closes promptly: new connections must fail while the
	// in-flight request keeps going.
	newConnRefused := false
	for i := 0; i < 200; i++ {
		c := &http.Client{Timeout: 250 * time.Millisecond}
		if _, err := c.Get(url + "/healthz"); err != nil {
			newConnRefused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !newConnRefused {
		t.Error("new connections still accepted during shutdown")
	}

	// Finish the batch; the drained request must succeed in full.
	for _, l := range lines[1:] {
		if _, err := io.WriteString(pw, l+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()

	pres := <-posted
	if pres.err != nil {
		t.Fatalf("in-flight request failed: %v", pres.err)
	}
	if pres.resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", pres.resp.StatusCode)
	}
	if pres.body["ingested"].(float64) != float64(len(lines)) {
		t.Fatalf("ingested = %v, want %d", pres.body["ingested"], len(lines))
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}
}

// TestCypherBodyLimit: oversized /cypher and /queries bodies are
// rejected with 413 instead of being read to completion.
func TestCypherBodyLimit(t *testing.T) {
	ts := newTestServer(t)
	big := fmt.Sprintf(`{"query": %q}`, strings.Repeat("x", maxRequestBody+1024))
	resp, _ := post(t, ts.URL+"/cypher", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("cypher status = %d, want 413", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/queries", strings.Repeat("y", maxRequestBody+1024))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("queries status = %d, want 413", resp.StatusCode)
	}
}

// newHTTPTestServer wires a *Server (not just its handler) so tests can
// reach into counters while talking over real HTTP.
func newHTTPTestServer(t *testing.T, s *Server) *httptestServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { _ = hs.Close() })
	return &httptestServer{URL: "http://" + ln.Addr().String()}
}

type httptestServer struct{ URL string }
