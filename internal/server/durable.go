package server

// durable.go wires the server to the durability stack: POST /events
// lands in a write-ahead-logged topic (internal/queue OpenDurable), the
// engine checkpoints into <dir>/checkpoints every N delivered events
// (internal/engine Checkpointer), and OpenDurable on boot rebuilds
// engine state as last checkpoint + replay-from-offset instead of
// replaying the stream from zero. The checkpoint manifest's applied
// offsets seed the connector's deduplication, so delivery stays
// exactly-once across a crash; records below the checkpointed offsets
// are compacted out of the log after every save.
//
// Like server.Restore, the merged /cypher store is not part of engine
// checkpoints: it starts empty after a restart.

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"time"

	"seraph/internal/engine"
	"seraph/internal/graphstore"
	"seraph/internal/ingest"
	"seraph/internal/metrics"
	"seraph/internal/queue"
	"seraph/internal/wal"
)

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// Dir is the data directory; checkpoints live under
	// <dir>/checkpoints, the event log under <dir>/queue.
	Dir string
	// Fsync is the WAL sync policy (default wal.FsyncAlways). Policies
	// other than always trade a bounded loss window for throughput;
	// checkpoints always sync regardless.
	Fsync wal.Policy
	// SyncEvery is the wal.FsyncInterval cadence (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes is the WAL segment rotation size (default 4 MiB).
	// Compaction is segment-granular, so smaller segments reclaim
	// space sooner at the cost of more files.
	SegmentBytes int64
	// CheckpointEvery checkpoints the engine after this many delivered
	// events (default 256).
	CheckpointEvery int
	// QueueCapacity / QueuePolicy bound the ingest topic exactly like
	// EnableIngestQueue. Capacity 0 means unbounded.
	QueueCapacity int
	QueuePolicy   queue.FullPolicy
}

// OpenDurable opens a server backed by a data directory: events are
// logged before they are acknowledged, the engine checkpoints
// periodically, and a reopened directory resumes from checkpoint +
// log replay. Ingestion runs in queue mode (POST /events enqueues; a
// background connector delivers), so EnableIngestQueue must not also
// be called. Engine options are applied on top of any checkpoint-
// derived configuration; explicitly conflicting options are rejected
// exactly as by engine.Restore.
func OpenDurable(cfg DurableConfig, opts ...engine.Option) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: durable mode needs a data directory")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	cpDir := filepath.Join(cfg.Dir, "checkpoints")

	s := &Server{
		merged:  graphstore.New(),
		buffers: map[string]*resultRing{},
	}
	extra := append([]engine.Option{
		engine.WithMetrics(metrics.NewRegistry()),
		engine.WithLogger(slog.Default()),
	}, opts...)
	var applied []int64
	recovered := false
	eng, info, err := engine.Recover(cpDir, func(name string) engine.Sink {
		ring := &resultRing{}
		s.buffers[name] = ring
		return ring.add
	}, extra...)
	switch {
	case err == nil:
		s.engine = eng
		applied = info.Offsets[ingestTopic]
		recovered = true
	case errors.Is(err, engine.ErrNoCheckpoint):
		s.engine = engine.New(extra...)
	default:
		return nil, err
	}
	s.finishInit()

	b, err := queue.OpenDurable(filepath.Join(cfg.Dir, "queue"), queue.DurableConfig{
		Fsync:        cfg.Fsync,
		SyncEvery:    cfg.SyncEvery,
		SegmentBytes: cfg.SegmentBytes,
		WAL:          wal.Options{Metrics: s.reg},
	})
	if err != nil {
		return nil, err
	}
	if err := b.CreateTopicWith(ingestTopic, queue.TopicConfig{
		Partitions: 1,
		Capacity:   cfg.QueueCapacity,
		Policy:     cfg.QueuePolicy,
	}); err != nil {
		b.CloseDurable()
		return nil, err
	}
	connOpts := []ingest.ConnectorOption{
		ingest.WithDeadLetter(ingestDLQTopic),
		ingest.WithSinkRetry(8, time.Millisecond, 250*time.Millisecond),
		ingest.WithIngestMetrics(s.reg),
	}
	if applied != nil {
		// Resume ingestion exactly where the checkpoint left it: seek
		// past records the recovered state already reflects and
		// deduplicate any the log replays below that watermark.
		connOpts = append(connOpts, ingest.WithAppliedOffsets(applied))
	}
	conn, err := ingest.NewConnector(b, ingestTopic, s.engine.Push, connOpts...)
	if err != nil {
		b.CloseDurable()
		return nil, err
	}
	ck, err := s.engine.NewCheckpointer(cpDir)
	if err != nil {
		b.CloseDurable()
		return nil, err
	}
	if recovered {
		s.log.Info("recovered from data directory",
			"dir", cfg.Dir,
			"checkpoint_seq", info.Seq,
			"delta_chain", info.Deltas,
			"queries", len(s.engine.Queries()),
			"recovery", info.Duration,
		)
	}
	iq := &ingestQueue{
		broker:  b,
		conn:    conn,
		done:    make(chan struct{}),
		ck:      ck,
		ckEvery: cfg.CheckpointEvery,
	}
	s.iq = iq
	go s.drainIngestQueue(iq)
	return s, nil
}

// checkpointDurable saves an engine checkpoint with the connector's
// applied offsets and compacts the event log below them. Runs on the
// drain goroutine (and once more from Close after it exits), so the
// Checkpointer is never used concurrently. Failures are logged, not
// fatal: the previous checkpoint stays valid and recovery just replays
// a longer log suffix.
func (s *Server) checkpointDurable(iq *ingestQueue) {
	// Barrier first: the offsets we persist must not run ahead of what
	// the log can replay after a crash (only relevant under fsync
	// policies other than always).
	if err := iq.broker.SyncWAL(); err != nil {
		s.log.Error("wal sync before checkpoint failed", "err", err)
		return
	}
	offsets := iq.conn.AppliedOffsets()
	if err := iq.ck.Save(map[string][]int64{ingestTopic: offsets}); err != nil {
		s.log.Error("checkpoint failed", "err", err)
		return
	}
	for p, off := range offsets {
		if err := iq.broker.CompactTopic(ingestTopic, p, off); err != nil {
			s.log.Warn("log compaction failed", "partition", p, "err", err)
		}
	}
}
