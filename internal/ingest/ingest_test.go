package ingest

import (
	"testing"
	"time"

	"seraph/internal/graphstore"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
	"seraph/internal/workload"
)

func TestCodecRoundTrip(t *testing.T) {
	g := pg.New()
	ts := time.Date(2022, 10, 14, 14, 45, 0, 0, time.UTC)
	g.AddNode(&value.Node{ID: 1, Labels: []string{"Station"}, Props: map[string]value.Value{
		"id":   value.NewInt(1),
		"name": value.NewString("hbf"),
		"geo":  value.NewList(value.NewFloat(51.34), value.NewFloat(12.38)),
		"open": value.True,
		"meta": value.NewMap(map[string]value.Value{"zone": value.NewInt(2)}),
	}})
	g.AddNode(&value.Node{ID: 2, Labels: []string{"Bike", "EBike"}, Props: map[string]value.Value{}})
	if err := g.AddRel(&value.Relationship{
		ID: 7, StartID: 2, EndID: 1, Type: "rentedAt",
		Props: map[string]value.Value{
			"val_time": value.NewDateTime(ts),
			"lease":    value.NewDuration(20 * time.Minute),
		},
	}); err != nil {
		t.Fatal(err)
	}

	data, err := Encode(g, ts)
	if err != nil {
		t.Fatal(err)
	}
	back, backTS, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !backTS.Equal(ts) {
		t.Errorf("ts = %s", backTS)
	}
	if back.NumNodes() != 2 || back.NumRels() != 1 {
		t.Fatalf("sizes %d/%d", back.NumNodes(), back.NumRels())
	}
	n := back.Node(1)
	if !value.Equivalent(n.Prop("name"), value.NewString("hbf")) {
		t.Error("string prop")
	}
	if !value.Equivalent(n.Prop("geo"), value.NewList(value.NewFloat(51.34), value.NewFloat(12.38))) {
		t.Error("list prop")
	}
	if !value.Equivalent(n.Prop("meta"), value.NewMap(map[string]value.Value{"zone": value.NewInt(2)})) {
		t.Errorf("map prop: %s", n.Prop("meta"))
	}
	r := back.Rel(7)
	if r.Prop("val_time").Kind() != value.KindDateTime || !r.Prop("val_time").DateTime().Equal(ts) {
		t.Errorf("datetime prop: %s", r.Prop("val_time"))
	}
	if r.Prop("lease").Duration() != 20*time.Minute {
		t.Errorf("duration prop: %s", r.Prop("lease"))
	}
	if !back.Node(2).HasLabel("EBike") {
		t.Error("labels")
	}
}

func TestDecodeIntVsFloat(t *testing.T) {
	g, _, err := Decode([]byte(`{"ts":"2022-10-14T14:45:00Z","nodes":[{"id":1,"props":{"i":5,"f":5.5}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	n := g.Node(1)
	if !n.Prop("i").IsInt() {
		t.Error("integral JSON number should decode as int")
	}
	if !n.Prop("f").IsFloat() {
		t.Error("fractional JSON number should decode as float")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"ts":"2022-10-14T14:45:00Z","rels":[{"id":1,"start":9,"end":10,"type":"T"}]}`, // dangling endpoints
		`{"ts":"2022-10-14T14:45:00Z","nodes":[{"id":1,"props":{"x":{"$t":"dt","v":"bogus"}}}]}`,
		`{"ts":"2022-10-14T14:45:00Z","nodes":[{"id":1,"props":{"x":{"$t":"weird","v":1}}}]}`,
	}
	for _, c := range cases {
		if _, _, err := Decode([]byte(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestMergeIntoUNA(t *testing.T) {
	store := graphstore.New()
	for _, el := range workload.Figure1Stream() {
		if err := MergeInto(store, el.Graph); err != nil {
			t.Fatal(err)
		}
	}
	// Figure 2: merged graph has 8 nodes and 8 relationships.
	if store.NumNodes() != 8 || store.NumRels() != 8 {
		t.Errorf("merged sizes %d/%d, want 8/8", store.NumNodes(), store.NumRels())
	}
	// Merging the same events again is idempotent.
	for _, el := range workload.Figure1Stream() {
		if err := MergeInto(store, el.Graph); err != nil {
			t.Fatal(err)
		}
	}
	if store.NumNodes() != 8 || store.NumRels() != 8 {
		t.Error("re-merge must be idempotent under UNA")
	}
}

func TestMergeIntoConflict(t *testing.T) {
	store := graphstore.New()
	g1 := pg.New()
	g1.AddNode(&value.Node{ID: 1, Props: map[string]value.Value{}})
	g1.AddNode(&value.Node{ID: 2, Props: map[string]value.Value{}})
	g1.AddRel(&value.Relationship{ID: 5, StartID: 1, EndID: 2, Type: "A", Props: map[string]value.Value{}})
	if err := MergeInto(store, g1); err != nil {
		t.Fatal(err)
	}
	g2 := pg.New()
	g2.AddNode(&value.Node{ID: 1, Props: map[string]value.Value{}})
	g2.AddNode(&value.Node{ID: 2, Props: map[string]value.Value{}})
	g2.AddRel(&value.Relationship{ID: 5, StartID: 2, EndID: 1, Type: "A", Props: map[string]value.Value{}})
	if err := MergeInto(store, g2); err == nil {
		t.Error("conflicting topology must fail")
	}
}

func TestConnectorPipeline(t *testing.T) {
	broker := queue.NewBroker()
	if err := broker.CreateTopic("rentals", 1); err != nil {
		t.Fatal(err)
	}
	for _, el := range workload.Figure1Stream() {
		data, err := Encode(el.Graph, el.Time)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := broker.Produce("rentals", "", data, el.Time); err != nil {
			t.Fatal(err)
		}
	}

	var delivered []time.Time
	store := graphstore.New()
	conn, err := NewConnector(broker, "rentals", func(g *pg.Graph, ts time.Time) error {
		delivered = append(delivered, ts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.WithMergedStore(store)

	n, err := conn.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || conn.EventsDelivered() != 5 {
		t.Errorf("delivered %d events", n)
	}
	for i := 1; i < len(delivered); i++ {
		if delivered[i].Before(delivered[i-1]) {
			t.Fatal("out-of-order delivery")
		}
	}
	if store.NumNodes() != 8 || store.NumRels() != 8 {
		t.Errorf("merged store %d/%d", store.NumNodes(), store.NumRels())
	}
	// Drained topic yields nothing more.
	if n, _ := conn.Poll(10); n != 0 {
		t.Errorf("post-drain poll: %d", n)
	}
}

func TestConnectorBadEvent(t *testing.T) {
	broker := queue.NewBroker()
	if err := broker.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	broker.Produce("t", "", []byte("garbage"), time.Now())
	conn, err := NewConnector(broker, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Poll(10); err == nil {
		t.Error("bad event must surface an error")
	}
}
