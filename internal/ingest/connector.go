package ingest

import (
	"fmt"
	"time"

	"seraph/internal/graphstore"
	"seraph/internal/metrics"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
)

// StreamSink receives decoded stream elements in timestamp order.
// engine.Engine's Push method satisfies this signature through a small
// adapter at the call site.
type StreamSink func(g *pg.Graph, ts time.Time) error

// Connector pumps events from a broker topic into a stream sink
// (continuous engine) and, optionally, merges every event into a
// persistent store under the unique name assumption — mirroring the
// paper's dual pipeline where the Kafka connector also populates a
// Neo4j database (Figure 2).
type Connector struct {
	broker   *queue.Broker
	consumer *queue.Consumer
	sink     StreamSink
	store    *graphstore.Store // optional merged store

	eventsDelivered int

	// Fault handling (see overload.go). pending holds fetched-but-
	// undelivered records after a deadline or retry-budget abort — they
	// are delivered, exactly once each, before anything new is polled.
	// applied tracks the next undelivered offset per partition so
	// at-least-once redelivery (consumer rewind after a crash) is
	// deduplicated instead of double-applied.
	deadline    time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	dlqTopic    string
	now         func() time.Time
	sleep       func(time.Duration)
	pending     []queue.Record
	applied     map[int]int64

	deadlettered int64
	duplicates   int64
	retries      int64

	mDeadletter *metrics.Counter
	mDelivered  *metrics.Counter
	mDuplicates *metrics.Counter
	mRetries    *metrics.Counter
	mLag        *metrics.Gauge
}

// NewConnector creates a connector consuming topic from b.
func NewConnector(b *queue.Broker, topic string, sink StreamSink, opts ...ConnectorOption) (*Connector, error) {
	consumer, err := queue.NewConsumer(b, "seraph-connector", topic)
	if err != nil {
		return nil, err
	}
	c := &Connector{
		broker:      b,
		consumer:    consumer,
		sink:        sink,
		applied:     map[int]int64{},
		backoffBase: time.Millisecond,
		backoffMax:  250 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// WithMergedStore also maintains a fully merged graph (no windowing),
// as the Cypher-only baseline requires.
func (c *Connector) WithMergedStore(s *graphstore.Store) *Connector {
	c.store = s
	return c
}

// Poll consumes up to max pending events, delivering each to the sink
// and merging into the store if configured. It returns the number of
// events delivered. Records retained by a previous deadline or
// retry-budget abort are delivered before anything new is polled.
func (c *Connector) Poll(max int) (int, error) {
	recs := c.pending
	c.pending = nil
	if len(recs) == 0 {
		var err error
		recs, err = c.consumer.Poll(max)
		if err != nil {
			return 0, err
		}
	}
	return c.deliver(recs)
}

// deliver decodes and dispatches fetched records.
//
// Fault handling (all opt-in, see overload.go): the batch runs under a
// wall-clock deadline; a record the engine rejects transiently
// (admission control) is retried with exponential backoff; a poison
// record — undecodable, merge conflict, or permanently rejected — is
// quarantined to the dead-letter topic; and records redelivered after
// a consumer rewind are skipped by offset deduplication. On a deadline
// or retry-budget abort the undelivered remainder is retained in
// c.pending and the count of records that were delivered is still
// returned alongside the transient error.
func (c *Connector) deliver(recs []queue.Record) (int, error) {
	start := c.wallNow()
	delivered := 0
	for i, rec := range recs {
		if c.deadline > 0 && c.wallNow().Sub(start) > c.deadline {
			c.pending = append(c.pending, recs[i:]...)
			return delivered, fmt.Errorf("ingest: delivered %d of %d records: %w",
				delivered, len(recs), ErrBatchDeadline)
		}
		if next, ok := c.applied[rec.Partition]; ok && rec.Offset < next {
			c.duplicates++
			c.mDuplicates.Inc()
			continue
		}
		g, ts, err := Decode(rec.Value)
		if err != nil {
			err = fmt.Errorf("ingest: record %s[%d]@%d: %w", rec.Topic, rec.Partition, rec.Offset, err)
			if !c.quarantine(rec, err) {
				return delivered, err
			}
			c.applied[rec.Partition] = rec.Offset + 1
			continue
		}
		if c.store != nil {
			if err := MergeInto(c.store, g); err != nil {
				if !c.quarantine(rec, err) {
					return delivered, err
				}
				c.applied[rec.Partition] = rec.Offset + 1
				continue
			}
		}
		if c.sink != nil {
			if err := c.pushWithRetry(g, ts); err != nil {
				if queue.IsTransient(err) {
					// The engine is overloaded, not the record: retain it
					// and everything after it for the next Poll.
					c.pending = append(c.pending, recs[i:]...)
					return delivered, err
				}
				if !c.quarantine(rec, err) {
					return delivered, err
				}
				c.applied[rec.Partition] = rec.Offset + 1
				continue
			}
		}
		c.applied[rec.Partition] = rec.Offset + 1
		c.eventsDelivered++
		c.mDelivered.Inc()
		delivered++
	}
	if lag, err := c.consumer.Lag(); err == nil {
		c.mLag.Set(lag + int64(len(c.pending)))
	}
	return delivered, nil
}

// pushWithRetry delivers one element to the sink, retrying transient
// rejections with exponential backoff up to the configured budget.
func (c *Connector) pushWithRetry(g *pg.Graph, ts time.Time) error {
	backoff := c.backoffBase
	for attempt := 0; ; attempt++ {
		err := c.sink(g, ts)
		if err == nil || !queue.IsTransient(err) || attempt >= c.maxRetries {
			return err
		}
		c.retries++
		c.mRetries.Inc()
		c.doSleep(backoff)
		if backoff < c.backoffMax {
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
		}
	}
}

// Drain polls until the topic is exhausted.
func (c *Connector) Drain() (int, error) {
	total := 0
	for {
		n, err := c.Poll(1024)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// EventsDelivered returns the number of events delivered so far.
func (c *Connector) EventsDelivered() int { return c.eventsDelivered }

// Consumer exposes the underlying consumer (the chaos harness rewinds
// it to model redelivery after a crash).
func (c *Connector) Consumer() *queue.Consumer { return c.consumer }

// MergeInto merges event graph g into store under the unique name
// assumption: vertices and relationships sharing an identifier are
// merged into single entities (labels union, properties union), the
// MERGE behaviour described in Section 2.
func MergeInto(store *graphstore.Store, g *pg.Graph) error {
	for _, n := range g.Nodes() {
		existing := store.Node(n.ID)
		if existing == nil {
			props := make(map[string]value.Value, len(n.Props))
			for k, v := range n.Props {
				props[k] = v
			}
			store.AddNode(&value.Node{ID: n.ID, Labels: append([]string(nil), n.Labels...), Props: props})
			continue
		}
		for _, l := range n.Labels {
			if !existing.HasLabel(l) {
				store.AddLabel(existing, l)
			}
		}
		for k, v := range n.Props {
			existing.Props[k] = v
		}
	}
	for _, r := range g.Rels() {
		existing := store.Rel(r.ID)
		if existing == nil {
			props := make(map[string]value.Value, len(r.Props))
			for k, v := range r.Props {
				props[k] = v
			}
			if err := store.AddRel(&value.Relationship{
				ID: r.ID, StartID: r.StartID, EndID: r.EndID, Type: r.Type, Props: props,
			}); err != nil {
				return err
			}
			continue
		}
		if existing.StartID != r.StartID || existing.EndID != r.EndID || existing.Type != r.Type {
			return fmt.Errorf("ingest: relationship %d conflicts with existing topology", r.ID)
		}
		for k, v := range r.Props {
			existing.Props[k] = v
		}
	}
	return nil
}
