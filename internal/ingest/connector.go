package ingest

import (
	"fmt"
	"time"

	"seraph/internal/graphstore"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
)

// StreamSink receives decoded stream elements in timestamp order.
// engine.Engine's Push method satisfies this signature through a small
// adapter at the call site.
type StreamSink func(g *pg.Graph, ts time.Time) error

// Connector pumps events from a broker topic into a stream sink
// (continuous engine) and, optionally, merges every event into a
// persistent store under the unique name assumption — mirroring the
// paper's dual pipeline where the Kafka connector also populates a
// Neo4j database (Figure 2).
type Connector struct {
	consumer *queue.Consumer
	sink     StreamSink
	store    *graphstore.Store // optional merged store

	eventsDelivered int
}

// NewConnector creates a connector consuming topic from b.
func NewConnector(b *queue.Broker, topic string, sink StreamSink) (*Connector, error) {
	c, err := queue.NewConsumer(b, "seraph-connector", topic)
	if err != nil {
		return nil, err
	}
	return &Connector{consumer: c, sink: sink}, nil
}

// WithMergedStore also maintains a fully merged graph (no windowing),
// as the Cypher-only baseline requires.
func (c *Connector) WithMergedStore(s *graphstore.Store) *Connector {
	c.store = s
	return c
}

// Poll consumes up to max pending events, delivering each to the sink
// and merging into the store if configured. It returns the number of
// events delivered.
func (c *Connector) Poll(max int) (int, error) {
	recs, err := c.consumer.Poll(max)
	if err != nil {
		return 0, err
	}
	return c.deliver(recs)
}

// deliver decodes and dispatches fetched records.
func (c *Connector) deliver(recs []queue.Record) (int, error) {
	for _, rec := range recs {
		g, ts, err := Decode(rec.Value)
		if err != nil {
			return 0, fmt.Errorf("ingest: record %s[%d]@%d: %w", rec.Topic, rec.Partition, rec.Offset, err)
		}
		if c.store != nil {
			if err := MergeInto(c.store, g); err != nil {
				return 0, err
			}
		}
		if c.sink != nil {
			if err := c.sink(g, ts); err != nil {
				return 0, err
			}
		}
		c.eventsDelivered++
	}
	return len(recs), nil
}

// Drain polls until the topic is exhausted.
func (c *Connector) Drain() (int, error) {
	total := 0
	for {
		n, err := c.Poll(1024)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// EventsDelivered returns the number of events delivered so far.
func (c *Connector) EventsDelivered() int { return c.eventsDelivered }

// MergeInto merges event graph g into store under the unique name
// assumption: vertices and relationships sharing an identifier are
// merged into single entities (labels union, properties union), the
// MERGE behaviour described in Section 2.
func MergeInto(store *graphstore.Store, g *pg.Graph) error {
	for _, n := range g.Nodes() {
		existing := store.Node(n.ID)
		if existing == nil {
			props := make(map[string]value.Value, len(n.Props))
			for k, v := range n.Props {
				props[k] = v
			}
			store.AddNode(&value.Node{ID: n.ID, Labels: append([]string(nil), n.Labels...), Props: props})
			continue
		}
		for _, l := range n.Labels {
			if !existing.HasLabel(l) {
				store.AddLabel(existing, l)
			}
		}
		for k, v := range n.Props {
			existing.Props[k] = v
		}
	}
	for _, r := range g.Rels() {
		existing := store.Rel(r.ID)
		if existing == nil {
			props := make(map[string]value.Value, len(r.Props))
			for k, v := range r.Props {
				props[k] = v
			}
			if err := store.AddRel(&value.Relationship{
				ID: r.ID, StartID: r.StartID, EndID: r.EndID, Type: r.Type, Props: props,
			}); err != nil {
				return err
			}
			continue
		}
		if existing.StartID != r.StartID || existing.EndID != r.EndID || existing.Type != r.Type {
			return fmt.Errorf("ingest: relationship %d conflicts with existing topology", r.ID)
		}
		for k, v := range r.Props {
			existing.Props[k] = v
		}
	}
	return nil
}
