package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"seraph/internal/pg"
	"seraph/internal/stream"
	"seraph/internal/value"
)

// CSV ingestion: the paper notes (Section 5.2) that Cypher-style
// ingestion maps elements of an input source such as CSV into property
// graphs, one event at a time. CSVMapping declares how rows become
// nodes and relationships; rows sharing an event timestamp are grouped
// into one property graph stream element.

// ColType names a property column type in a CSV mapping.
type ColType string

// Column types.
const (
	ColString   ColType = "string"
	ColInt      ColType = "int"
	ColFloat    ColType = "float"
	ColBool     ColType = "bool"
	ColDateTime ColType = "datetime"
	ColDuration ColType = "duration"
)

// PropSpec maps a CSV column to a typed property.
type PropSpec struct {
	Column string
	Type   ColType
	// Optional renames the property; empty keeps the column name.
	As string
	// Optional: empty cells yield no property instead of an error.
	Optional bool
}

// NodeSpec maps columns to one node per row.
type NodeSpec struct {
	// Var names the node within the row for relationship endpoints.
	Var string
	// IDColumn holds the node's external integer id.
	IDColumn string
	// IDOffset displaces the id space so multiple node kinds coexist
	// under the unique name assumption.
	IDOffset int64
	// Labels are fixed labels.
	Labels []string
	// LabelColumn optionally adds a per-row label when non-empty.
	LabelColumn string
	Props       []PropSpec
}

// RelSpec maps columns to one relationship per row.
type RelSpec struct {
	// Start and End reference NodeSpec.Var names.
	Start, End string
	// Type is the fixed relationship type; TypeColumn overrides it per
	// row when set.
	Type       string
	TypeColumn string
	// IDColumn optionally holds an explicit relationship id; when
	// empty a deterministic id is derived from the row content.
	IDColumn string
	IDOffset int64
	Props    []PropSpec
}

// Mapping declares how a CSV file becomes a property graph stream.
type Mapping struct {
	// TimeColumn holds the event timestamp (ISO 8601); consecutive rows
	// with equal timestamps form one stream element.
	TimeColumn string
	Nodes      []NodeSpec
	Rels       []RelSpec
}

// ReadCSV decodes CSV content (with a header row) into stream elements
// per the mapping. Rows must be ordered by the time column.
func ReadCSV(r io.Reader, m Mapping) ([]stream.Element, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: csv header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	need := func(name string) (int, error) {
		i, ok := col[name]
		if !ok {
			return 0, fmt.Errorf("ingest: csv column %q not found (header: %v)", name, header)
		}
		return i, nil
	}
	timeIdx, err := need(m.TimeColumn)
	if err != nil {
		return nil, err
	}

	var out []stream.Element
	var cur *pg.Graph
	var curTS time.Time
	rowNum := 1
	flush := func() {
		if cur != nil {
			out = append(out, stream.Element{Graph: cur, Time: curTS})
			cur = nil
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: csv row %d: %w", rowNum+1, err)
		}
		rowNum++
		ts, err := value.ParseDateTime(strings.TrimSpace(rec[timeIdx]))
		if err != nil {
			return nil, fmt.Errorf("ingest: csv row %d: time: %w", rowNum, err)
		}
		if cur == nil || !ts.Equal(curTS) {
			if cur != nil && ts.Before(curTS) {
				return nil, fmt.Errorf("ingest: csv row %d: out-of-order timestamp %s", rowNum, ts)
			}
			flush()
			cur = pg.New()
			curTS = ts
		}
		if err := applyRow(cur, m, col, rec, rowNum); err != nil {
			return nil, err
		}
	}
	flush()
	return out, nil
}

func applyRow(g *pg.Graph, m Mapping, col map[string]int, rec []string, rowNum int) error {
	cell := func(name string) (string, error) {
		i, ok := col[name]
		if !ok {
			return "", fmt.Errorf("ingest: csv row %d: column %q not found", rowNum, name)
		}
		if i >= len(rec) {
			return "", fmt.Errorf("ingest: csv row %d: short record", rowNum)
		}
		return strings.TrimSpace(rec[i]), nil
	}

	nodeIDs := map[string]int64{}
	for _, ns := range m.Nodes {
		raw, err := cell(ns.IDColumn)
		if err != nil {
			return err
		}
		id, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("ingest: csv row %d: node id %q: %v", rowNum, raw, err)
		}
		id += ns.IDOffset
		labels := append([]string(nil), ns.Labels...)
		if ns.LabelColumn != "" {
			l, err := cell(ns.LabelColumn)
			if err != nil {
				return err
			}
			if l != "" {
				labels = append(labels, l)
			}
		}
		props, err := buildProps(ns.Props, cell, rowNum)
		if err != nil {
			return err
		}
		g.AddNode(&value.Node{ID: id, Labels: labels, Props: props})
		nodeIDs[ns.Var] = id
	}

	for _, rs := range m.Rels {
		start, ok := nodeIDs[rs.Start]
		if !ok {
			return fmt.Errorf("ingest: csv mapping: unknown start node %q", rs.Start)
		}
		end, ok := nodeIDs[rs.End]
		if !ok {
			return fmt.Errorf("ingest: csv mapping: unknown end node %q", rs.End)
		}
		typ := rs.Type
		if rs.TypeColumn != "" {
			t, err := cell(rs.TypeColumn)
			if err != nil {
				return err
			}
			typ = t
		}
		if typ == "" {
			return fmt.Errorf("ingest: csv row %d: empty relationship type", rowNum)
		}
		props, err := buildProps(rs.Props, cell, rowNum)
		if err != nil {
			return err
		}
		var id int64
		if rs.IDColumn != "" {
			raw, err := cell(rs.IDColumn)
			if err != nil {
				return err
			}
			id, err = strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return fmt.Errorf("ingest: csv row %d: rel id %q: %v", rowNum, raw, err)
			}
			id += rs.IDOffset
		} else {
			id = rowHash(typ, start, end, props) + rs.IDOffset
		}
		if err := g.AddRel(&value.Relationship{
			ID: id, StartID: start, EndID: end, Type: typ, Props: props,
		}); err != nil {
			return fmt.Errorf("ingest: csv row %d: %w", rowNum, err)
		}
	}
	return nil
}

func buildProps(specs []PropSpec, cell func(string) (string, error), rowNum int) (map[string]value.Value, error) {
	props := map[string]value.Value{}
	for _, ps := range specs {
		raw, err := cell(ps.Column)
		if err != nil {
			return nil, err
		}
		if raw == "" {
			if ps.Optional {
				continue
			}
			return nil, fmt.Errorf("ingest: csv row %d: empty required column %q", rowNum, ps.Column)
		}
		v, err := parseCell(raw, ps.Type)
		if err != nil {
			return nil, fmt.Errorf("ingest: csv row %d: column %q: %w", rowNum, ps.Column, err)
		}
		name := ps.As
		if name == "" {
			name = ps.Column
		}
		props[name] = v
	}
	return props, nil
}

func parseCell(raw string, t ColType) (value.Value, error) {
	switch t {
	case ColString, "":
		return value.NewString(raw), nil
	case ColInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(n), nil
	case ColFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case ColBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b), nil
	case ColDateTime:
		ts, err := value.ParseDateTime(raw)
		if err != nil {
			return value.Null, err
		}
		return value.NewDateTime(ts), nil
	case ColDuration:
		d, err := value.ParseDuration(raw)
		if err != nil {
			return value.Null, err
		}
		return value.NewDuration(d), nil
	}
	return value.Null, fmt.Errorf("unknown column type %q", t)
}

// rowHash derives a deterministic relationship id from the row content
// so re-ingesting the same file merges under UNA.
func rowHash(typ string, start, end int64, props map[string]value.Value) int64 {
	h := uint64(1469598103934665603)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(typ)
	mix(strconv.FormatInt(start, 10))
	mix(strconv.FormatInt(end, 10))
	mix(value.Key(value.NewMap(props)))
	return int64(h >> 1)
}

// RentalCSVMapping is the ready-made mapping for the micro-mobility
// scenario: columns ts, vehicle, electric, station, user, kind
// (rent|return), at, duration.
func RentalCSVMapping() Mapping {
	return Mapping{
		TimeColumn: "ts",
		Nodes: []NodeSpec{
			{
				Var: "v", IDColumn: "vehicle", IDOffset: 1_000_000,
				Labels: []string{"Bike"}, LabelColumn: "extra_label",
				Props: []PropSpec{{Column: "vehicle", Type: ColInt, As: "id"}},
			},
			{
				Var: "s", IDColumn: "station",
				Labels: []string{"Station"},
				Props:  []PropSpec{{Column: "station", Type: ColInt, As: "id"}},
			},
		},
		Rels: []RelSpec{
			{
				Start: "v", End: "s", TypeColumn: "kind",
				Props: []PropSpec{
					{Column: "user", Type: ColInt, As: "user_id"},
					{Column: "at", Type: ColDateTime, As: "val_time"},
					{Column: "duration", Type: ColInt, Optional: true},
				},
			},
		},
	}
}
