package ingest

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"seraph/internal/metrics"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
)

func eventPayload(t *testing.T, id int64, ts time.Time) []byte {
	t.Helper()
	g := pg.New()
	g.AddNode(&value.Node{ID: id, Labels: []string{"N"}, Props: map[string]value.Value{}})
	data, err := Encode(g, ts)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func fillTopic(t *testing.T, b *queue.Broker, topic string, n int) {
	t.Helper()
	if err := b.CreateTopic(topic, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ts := time.Unix(int64(i), 0).UTC()
		if _, err := b.Produce(topic, "", eventPayload(t, int64(i+1), ts), ts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConnectorDeadLetterQuarantine: poison records (undecodable
// payloads, permanent sink rejections) land on the dead-letter topic
// with the cause as the record key, and delivery continues instead of
// aborting.
func TestConnectorDeadLetterQuarantine(t *testing.T) {
	b := queue.NewBroker()
	fillTopic(t, b, "t", 2)
	// A poison payload between two good records.
	if _, err := b.Produce("t", "", []byte("garbage"), time.Unix(9, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", "", eventPayload(t, 9, time.Unix(9, 0).UTC()), time.Unix(9, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	var got int
	rejectLast := errors.New("element out of order")
	conn, err := NewConnector(b, "t", func(g *pg.Graph, ts time.Time) error {
		if got == 2 {
			// Permanent (non-transient) engine rejection: poison too.
			return rejectLast
		}
		got++
		return nil
	}, WithDeadLetter("t-dlq"), WithIngestMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	n, err := conn.Drain()
	if err != nil {
		t.Fatalf("drain with quarantine: %v", err)
	}
	if n != 2 || got != 2 {
		t.Errorf("delivered %d (sink saw %d), want 2", n, got)
	}
	if conn.Deadlettered() != 2 {
		t.Errorf("deadlettered = %d, want 2", conn.Deadlettered())
	}
	// Both poison records are preserved verbatim on the DLQ.
	dlq, err := queue.NewConsumer(b, "inspect", "t-dlq")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := dlq.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dlq records = %d, want 2", len(recs))
	}
	if string(recs[0].Value) != "garbage" {
		t.Errorf("dlq payload = %q, want original bytes", recs[0].Value)
	}
	if recs[1].Key == "" {
		t.Error("dlq key should carry the quarantine cause")
	}
	if v := reg.Counter(mDeadletter, "").Value(); v != 2 {
		t.Errorf("seraph_deadletter_total = %d, want 2", v)
	}
}

// TestConnectorAbortsWithoutDeadLetter: the historical behaviour is
// preserved when no DLQ is configured — a poison record aborts the
// poll with its error.
func TestConnectorAbortsWithoutDeadLetter(t *testing.T) {
	b := queue.NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	b.Produce("t", "", []byte("garbage"), time.Unix(0, 0))
	conn, err := NewConnector(b, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Poll(10); err == nil {
		t.Error("poison record without DLQ must abort")
	}
}

// TestConnectorRetriesTransientRejection: a sink that rejects
// transiently (engine admission control) is retried with backoff on
// the injected clock until it accepts.
func TestConnectorRetriesTransientRejection(t *testing.T) {
	b := queue.NewBroker()
	fillTopic(t, b, "t", 3)
	var sleeps []time.Duration
	rejections := 0
	conn, err := NewConnector(b, "t", func(g *pg.Graph, ts time.Time) error {
		if rejections < 4 {
			rejections++
			return fmt.Errorf("wrapped: %w", queue.ErrFull)
		}
		return nil
	},
		WithSinkRetry(8, time.Millisecond, 4*time.Millisecond),
		WithConnectorClock(nil, func(d time.Duration) { sleeps = append(sleeps, d) }))
	if err != nil {
		t.Fatal(err)
	}
	n, err := conn.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || conn.Retries() != 4 {
		t.Errorf("delivered %d retries %d, want 3/4", n, conn.Retries())
	}
	want := []time.Duration{1, 2, 4, 4}
	for i, d := range sleeps {
		if d != want[i]*time.Millisecond {
			t.Errorf("sleep %d = %v, want %v", i, d, want[i]*time.Millisecond)
		}
	}
}

// TestConnectorRetainsBatchOnExhaustedRetries: when the retry budget
// runs out the failing record and the rest of the batch are retained,
// then delivered exactly once by the next Poll — no loss, no
// double-apply.
func TestConnectorRetainsBatchOnExhaustedRetries(t *testing.T) {
	b := queue.NewBroker()
	fillTopic(t, b, "t", 5)
	busy := true
	var applied []time.Time
	conn, err := NewConnector(b, "t", func(g *pg.Graph, ts time.Time) error {
		if busy && len(applied) >= 2 {
			return queue.ErrFull
		}
		applied = append(applied, ts)
		return nil
	},
		WithSinkRetry(1, time.Millisecond, time.Millisecond),
		WithConnectorClock(nil, func(time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := conn.Poll(10)
	if !queue.IsTransient(err) {
		t.Fatalf("poll during overload: %v, want transient", err)
	}
	if n != 2 || conn.Pending() != 3 {
		t.Fatalf("delivered %d pending %d, want 2/3", n, conn.Pending())
	}
	busy = false
	n, err = conn.Poll(10)
	if err != nil || n != 3 {
		t.Fatalf("recovery poll: %d, %v", n, err)
	}
	if len(applied) != 5 {
		t.Fatalf("applied %d records, want 5", len(applied))
	}
	for i := 1; i < len(applied); i++ {
		if applied[i].Before(applied[i-1]) {
			t.Fatal("out-of-order apply after retention")
		}
	}
}

// TestConnectorBatchDeadline: a slow sink trips the per-batch deadline;
// the remainder is retained and delivered on the next poll.
func TestConnectorBatchDeadline(t *testing.T) {
	b := queue.NewBroker()
	fillTopic(t, b, "t", 6)
	wall := time.Unix(0, 0)
	now := func() time.Time {
		wall = wall.Add(40 * time.Millisecond)
		return wall
	}
	var applied int
	conn, err := NewConnector(b, "t", func(g *pg.Graph, ts time.Time) error {
		applied++
		return nil
	},
		WithBatchDeadline(100*time.Millisecond),
		WithConnectorClock(now, func(time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := conn.Poll(10)
	if !errors.Is(err, ErrBatchDeadline) {
		t.Fatalf("poll past deadline: %v, want ErrBatchDeadline", err)
	}
	if !queue.IsTransient(err) {
		t.Error("deadline error must be transient")
	}
	if n == 0 || n == 6 || n+conn.Pending() != 6 {
		t.Fatalf("delivered %d pending %d", n, conn.Pending())
	}
	total := n
	for conn.Pending() > 0 {
		m, err := conn.Poll(10)
		if err != nil && !errors.Is(err, ErrBatchDeadline) {
			t.Fatal(err)
		}
		total += m
	}
	if total != 6 || applied != 6 {
		t.Errorf("total delivered %d applied %d, want 6", total, applied)
	}
}

// TestConnectorDedupsRedelivery: after a consumer rewind (modeling a
// crash between apply and offset persistence), redelivered records are
// skipped by offset deduplication rather than applied twice.
func TestConnectorDedupsRedelivery(t *testing.T) {
	b := queue.NewBroker()
	fillTopic(t, b, "t", 4)
	var applied int
	conn, err := NewConnector(b, "t", func(g *pg.Graph, ts time.Time) error {
		applied++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Drain(); err != nil {
		t.Fatal(err)
	}
	conn.Consumer().Rewind(3)
	n, err := conn.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || applied != 4 {
		t.Errorf("redelivery applied %d new (%d total), want 0/4", n, applied)
	}
	if conn.Duplicates() != 3 {
		t.Errorf("duplicates = %d, want 3", conn.Duplicates())
	}
}
