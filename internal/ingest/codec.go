// Package ingest implements the event → property graph mapping of the
// paper's Section 2 pipeline: rental stations publish events to the
// queue; a connector (the stand-in for the Neo4j Kafka Connector)
// decodes each event into a property graph and either streams it into
// the continuous engine or merges it into a persistent store under the
// unique name assumption.
package ingest

import (
	"encoding/json"
	"fmt"
	"time"

	"seraph/internal/pg"
	"seraph/internal/value"
)

// GraphEvent is the wire format of one stream element: a property
// graph (nodes and relationships) with its event timestamp.
type GraphEvent struct {
	TS    time.Time   `json:"ts"`
	Nodes []NodeEvent `json:"nodes,omitempty"`
	Rels  []RelEvent  `json:"rels,omitempty"`
}

// NodeEvent is a node in the wire format.
type NodeEvent struct {
	ID     int64          `json:"id"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
}

// RelEvent is a relationship in the wire format.
type RelEvent struct {
	ID    int64          `json:"id"`
	Start int64          `json:"start"`
	End   int64          `json:"end"`
	Type  string         `json:"type"`
	Props map[string]any `json:"props,omitempty"`
}

// Encode serializes a stream element to JSON.
func Encode(g *pg.Graph, ts time.Time) ([]byte, error) {
	ev := GraphEvent{TS: ts.UTC()}
	for _, n := range g.Nodes() {
		ev.Nodes = append(ev.Nodes, NodeEvent{
			ID:     n.ID,
			Labels: n.Labels,
			Props:  encodeProps(n.Props),
		})
	}
	for _, r := range g.Rels() {
		ev.Rels = append(ev.Rels, RelEvent{
			ID:    r.ID,
			Start: r.StartID,
			End:   r.EndID,
			Type:  r.Type,
			Props: encodeProps(r.Props),
		})
	}
	return json.Marshal(ev)
}

// Decode parses a JSON event into a property graph and its timestamp.
func Decode(data []byte) (*pg.Graph, time.Time, error) {
	var ev GraphEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		return nil, time.Time{}, fmt.Errorf("ingest: invalid event: %w", err)
	}
	g := pg.New()
	for _, n := range ev.Nodes {
		props, err := decodeProps(n.Props)
		if err != nil {
			return nil, time.Time{}, fmt.Errorf("ingest: node %d: %w", n.ID, err)
		}
		g.AddNode(&value.Node{ID: n.ID, Labels: n.Labels, Props: props})
	}
	for _, r := range ev.Rels {
		props, err := decodeProps(r.Props)
		if err != nil {
			return nil, time.Time{}, fmt.Errorf("ingest: relationship %d: %w", r.ID, err)
		}
		rel := &value.Relationship{ID: r.ID, StartID: r.Start, EndID: r.End, Type: r.Type, Props: props}
		if err := g.AddRel(rel); err != nil {
			return nil, time.Time{}, err
		}
	}
	return g, ev.TS, nil
}

// Typed value encoding: temporal values and maps/lists round-trip via
// a {"$t": kind, "v": payload} wrapper; plain JSON scalars map
// directly.

func encodeProps(props map[string]value.Value) map[string]any {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]any, len(props))
	for k, v := range props {
		out[k] = encodeValue(v)
	}
	return out
}

func encodeValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindNumber:
		if v.IsInt() {
			return v.Int()
		}
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindDateTime:
		return map[string]any{"$t": "dt", "v": v.DateTime().Format(time.RFC3339Nano)}
	case value.KindDuration:
		return map[string]any{"$t": "dur", "v": v.Duration().Nanoseconds()}
	case value.KindList:
		items := make([]any, len(v.List()))
		for i, e := range v.List() {
			items[i] = encodeValue(e)
		}
		return items
	case value.KindMap:
		m := make(map[string]any, len(v.Map()))
		for k, e := range v.Map() {
			m[k] = encodeValue(e)
		}
		return map[string]any{"$t": "map", "v": m}
	}
	return nil
}

func decodeProps(raw map[string]any) (map[string]value.Value, error) {
	props := make(map[string]value.Value, len(raw))
	for k, v := range raw {
		dv, err := decodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		if !dv.IsNull() {
			props[k] = dv
		}
	}
	return props, nil
}

func decodeValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case string:
		return value.NewString(x), nil
	case float64:
		if x == float64(int64(x)) {
			return value.NewInt(int64(x)), nil
		}
		return value.NewFloat(x), nil
	case json.Number:
		if n, err := x.Int64(); err == nil {
			return value.NewInt(n), nil
		}
		f, err := x.Float64()
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case []any:
		items := make([]value.Value, len(x))
		for i, e := range x {
			dv, err := decodeValue(e)
			if err != nil {
				return value.Null, err
			}
			items[i] = dv
		}
		return value.NewList(items...), nil
	case map[string]any:
		tag, _ := x["$t"].(string)
		switch tag {
		case "dt":
			s, _ := x["v"].(string)
			t, err := time.Parse(time.RFC3339Nano, s)
			if err != nil {
				return value.Null, fmt.Errorf("invalid datetime %q", s)
			}
			return value.NewDateTime(t), nil
		case "dur":
			f, ok := x["v"].(float64)
			if !ok {
				return value.Null, fmt.Errorf("invalid duration payload")
			}
			return value.NewDuration(time.Duration(int64(f))), nil
		case "map":
			inner, ok := x["v"].(map[string]any)
			if !ok {
				return value.Null, fmt.Errorf("invalid map payload")
			}
			m := make(map[string]value.Value, len(inner))
			for k, e := range inner {
				dv, err := decodeValue(e)
				if err != nil {
					return value.Null, err
				}
				m[k] = dv
			}
			return value.NewMap(m), nil
		case "":
			// Untagged object: decode as a plain map.
			m := make(map[string]value.Value, len(x))
			for k, e := range x {
				dv, err := decodeValue(e)
				if err != nil {
					return value.Null, err
				}
				m[k] = dv
			}
			return value.NewMap(m), nil
		default:
			return value.Null, fmt.Errorf("unknown value tag %q", tag)
		}
	}
	return value.Null, fmt.Errorf("unsupported JSON value %T", v)
}
