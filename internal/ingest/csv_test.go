package ingest

import (
	"strings"
	"testing"
	"time"
)

// figure1CSV is the Figure 1 stream in the rental CSV format.
const figure1CSV = `ts,vehicle,electric,station,user,kind,at,duration,extra_label
2022-10-14T14:45:00,5,true,1,1234,rentedAt,2022-10-14T14:40:00,,EBike
2022-10-14T15:00:00,5,true,2,1234,returnedAt,2022-10-14T14:55:00,15,EBike
2022-10-14T15:00:00,6,false,2,1234,rentedAt,2022-10-14T14:57:00,,
2022-10-14T15:00:00,8,false,2,5678,rentedAt,2022-10-14T14:58:00,,
2022-10-14T15:15:00,6,false,3,1234,returnedAt,2022-10-14T15:13:00,16,
2022-10-14T15:20:00,8,false,3,5678,returnedAt,2022-10-14T15:15:00,17,
2022-10-14T15:20:00,7,true,3,5678,rentedAt,2022-10-14T15:18:00,,EBike
2022-10-14T15:40:00,7,true,4,5678,returnedAt,2022-10-14T15:35:00,17,EBike
`

func TestReadCSVFigure1(t *testing.T) {
	elems, err := ReadCSV(strings.NewReader(figure1CSV), RentalCSVMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 5 {
		t.Fatalf("elements = %d, want 5", len(elems))
	}
	wantRels := []int{1, 3, 1, 2, 1}
	for i, e := range elems {
		if e.Graph.NumRels() != wantRels[i] {
			t.Errorf("element %d rels = %d, want %d", i, e.Graph.NumRels(), wantRels[i])
		}
		if err := e.Graph.Validate(); err != nil {
			t.Errorf("element %d: %v", i, err)
		}
	}
	// First rental has the right typed properties.
	r := elems[0].Graph.Rels()[0]
	if r.Type != "rentedAt" || r.Prop("user_id").Int() != 1234 {
		t.Errorf("first rel: %s %s", r.Type, r.Prop("user_id"))
	}
	if got := r.Prop("val_time").DateTime().Format("15:04"); got != "14:40" {
		t.Errorf("val_time = %s", got)
	}
	if !r.Prop("duration").IsNull() {
		t.Error("rental should have no duration")
	}
	// EBike label applied from the extra_label column.
	for _, n := range elems[0].Graph.Nodes() {
		if n.HasLabel("Bike") && n.Prop("id").Int() == 5 && !n.HasLabel("EBike") {
			t.Error("extra label missing")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	m := RentalCSVMapping()
	cases := []struct {
		name string
		csv  string
	}{
		{"missing time column", "vehicle,station\n1,2\n"},
		{"bad timestamp", "ts,vehicle,electric,station,user,kind,at,duration,extra_label\nnope,1,true,1,1,rentedAt,2022-10-14T14:40:00,,\n"},
		{"bad node id", "ts,vehicle,electric,station,user,kind,at,duration,extra_label\n2022-10-14T14:45:00,xyz,true,1,1,rentedAt,2022-10-14T14:40:00,,\n"},
		{"empty required", "ts,vehicle,electric,station,user,kind,at,duration,extra_label\n2022-10-14T14:45:00,1,true,1,,rentedAt,2022-10-14T14:40:00,,\n"},
		{"empty type", "ts,vehicle,electric,station,user,kind,at,duration,extra_label\n2022-10-14T14:45:00,1,true,1,1,,2022-10-14T14:40:00,,\n"},
		{"out of order", figure1CSV + "2022-10-14T15:00:00,9,false,1,1,rentedAt,2022-10-14T14:40:00,,\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), m); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestReadCSVGroupsEqualTimestamps(t *testing.T) {
	elems, err := ReadCSV(strings.NewReader(figure1CSV), RentalCSVMapping())
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2022, 10, 14, 15, 0, 0, 0, time.UTC)
	if !elems[1].Time.Equal(want) || elems[1].Graph.NumRels() != 3 {
		t.Errorf("grouping: %s %d", elems[1].Time, elems[1].Graph.NumRels())
	}
}

func TestCSVDeterministicRelIDs(t *testing.T) {
	a, err := ReadCSV(strings.NewReader(figure1CSV), RentalCSVMapping())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV(strings.NewReader(figure1CSV), RentalCSVMapping())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ra, rb := a[i].Graph.Rels(), b[i].Graph.Rels()
		for j := range ra {
			if ra[j].ID != rb[j].ID {
				t.Fatal("relationship ids must be deterministic")
			}
		}
	}
}
