package ingest

// overload.go is the connector's fault-handling layer: per-batch
// deadlines, retry with exponential backoff on transient engine
// rejection (engine.ErrBusy under admission control, queue.ErrFull on
// a bounded topic), poison-record quarantine to a dead-letter topic,
// and offset-based deduplication so at-least-once redelivery never
// applies a record twice. Everything is off by default; the plain
// connector behaves exactly as before.

import (
	"time"

	"seraph/internal/metrics"
	"seraph/internal/queue"
)

// ErrBatchDeadline is returned by Poll/Drain when a batch exceeded its
// processing deadline (WithBatchDeadline). It is transient: the
// unprocessed remainder of the batch is retained and delivered by the
// next Poll.
var ErrBatchDeadline error = transientErr("ingest: batch deadline exceeded")

type transientErr string

func (e transientErr) Error() string { return string(e) }

// Transient marks the error as retryable (see queue.IsTransient).
func (transientErr) Transient() bool { return true }

// Metric names exposed by the connector (see DESIGN.md "Overload &
// fault model").
const (
	mDeadletter    = "seraph_deadletter_total"
	mIngestLag     = "seraph_ingest_lag_records"
	mIngestDeliv   = "seraph_ingest_delivered_total"
	mIngestDupes   = "seraph_ingest_duplicates_total"
	mIngestRetries = "seraph_ingest_retries_total"
)

// ConnectorOption configures a Connector's fault handling.
type ConnectorOption func(*Connector)

// WithBatchDeadline bounds the wall-clock time one Poll spends
// delivering a batch. When exceeded, delivery stops, the remainder is
// retained for the next Poll, and Poll returns ErrBatchDeadline along
// with the number of records it did deliver. d <= 0 disables the
// deadline.
func WithBatchDeadline(d time.Duration) ConnectorOption {
	return func(c *Connector) { c.deadline = d }
}

// WithSinkRetry retries transient sink rejections (engine admission
// control, full downstream queues) with exponential backoff: base
// doubling up to max, at most maxRetries sleeps per record. When the
// budget is exhausted the record and the rest of its batch are
// retained for the next Poll and the transient error is returned.
// The default is no retries: a transient rejection surfaces
// immediately (the batch is still retained).
func WithSinkRetry(maxRetries int, base, max time.Duration) ConnectorOption {
	return func(c *Connector) { c.maxRetries, c.backoffBase, c.backoffMax = maxRetries, base, max }
}

// WithDeadLetter quarantines poison records — undecodable payloads,
// merge conflicts, permanent sink rejections such as out-of-order
// timestamps — to the named topic instead of aborting the run. The
// topic is created on first use if it does not exist. Without this
// option a poison record aborts delivery, the connector's historical
// behaviour.
func WithDeadLetter(topic string) ConnectorOption {
	return func(c *Connector) { c.dlqTopic = topic }
}

// WithConnectorClock injects the time source and sleep function used
// for batch deadlines and retry backoff (defaults time.Now and
// time.Sleep). Tests and the chaos harness substitute a virtual clock.
func WithConnectorClock(now func() time.Time, sleep func(time.Duration)) ConnectorOption {
	return func(c *Connector) { c.now, c.sleep = now, sleep }
}

// WithAppliedOffsets seeds the connector's per-partition applied
// positions (the next undelivered offset for each partition) and seeks
// the consumer there. A process recovering from a checkpoint passes
// the manifest's offsets so records the checkpointed state already
// reflects are deduplicated instead of double-applied — replay from a
// durable log stays exactly-once across the restart.
func WithAppliedOffsets(offsets []int64) ConnectorOption {
	return func(c *Connector) {
		for p, off := range offsets {
			c.applied[p] = off
			c.consumer.Seek(p, off)
		}
	}
}

// AppliedOffsets returns, per partition, the next offset the connector
// has not yet applied — the positions a checkpoint manifest must
// record for exactly-once recovery. Partitions the connector never saw
// report 0.
func (c *Connector) AppliedOffsets() []int64 {
	n, err := c.broker.Partitions(c.consumer.Topic())
	if err != nil {
		n = 0
	}
	for p := range c.applied {
		if p+1 > n {
			n = p + 1
		}
	}
	out := make([]int64, n)
	for p := range out {
		out[p] = c.applied[p]
	}
	return out
}

// WithIngestMetrics records connector counters into reg:
// seraph_deadletter_total, seraph_ingest_delivered_total,
// seraph_ingest_duplicates_total, seraph_ingest_retries_total and the
// seraph_ingest_lag_records gauge.
func WithIngestMetrics(reg *metrics.Registry) ConnectorOption {
	return func(c *Connector) {
		c.mDeadletter = reg.Counter(mDeadletter, "Poison records quarantined to the dead-letter topic.")
		c.mDelivered = reg.Counter(mIngestDeliv, "Records decoded and applied to the sink.")
		c.mDuplicates = reg.Counter(mIngestDupes, "Redelivered records skipped by offset deduplication.")
		c.mRetries = reg.Counter(mIngestRetries, "Backoff retries of transient sink rejections.")
		c.mLag = reg.Gauge(mIngestLag, "Records behind the head of the input topic.")
	}
}

// Deadlettered returns the number of poison records quarantined so
// far.
func (c *Connector) Deadlettered() int64 { return c.deadlettered }

// Duplicates returns the number of redelivered records skipped by
// offset deduplication.
func (c *Connector) Duplicates() int64 { return c.duplicates }

// Retries returns the number of backoff retries performed against the
// sink.
func (c *Connector) Retries() int64 { return c.retries }

// Pending returns the number of fetched-but-undelivered records
// retained after a deadline or retry-budget abort.
func (c *Connector) Pending() int { return len(c.pending) }

// quarantine routes a poison record to the dead-letter topic. It
// reports false when no dead-letter topic is configured (the caller
// aborts with the original error, preserving historical behaviour).
func (c *Connector) quarantine(rec queue.Record, cause error) bool {
	if c.dlqTopic == "" {
		return false
	}
	if _, err := c.broker.Partitions(c.dlqTopic); err != nil {
		if err := c.broker.CreateTopic(c.dlqTopic, 1); err != nil {
			return false
		}
	}
	// Best effort: the payload is preserved verbatim so the record can
	// be replayed after the cause (schema change, clock skew) is fixed.
	if _, err := c.broker.Produce(c.dlqTopic, cause.Error(), rec.Value, rec.Time); err != nil {
		return false
	}
	c.deadlettered++
	c.mDeadletter.Inc()
	return true
}

func (c *Connector) wallNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *Connector) doSleep(d time.Duration) {
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}
