package ingest

// PollBlocking consumes up to max pending events like Poll, but blocks
// waiting for new records when the topic is drained. It returns 0 only
// when the broker has been closed and everything was delivered.
func (c *Connector) PollBlocking(max int) (int, error) {
	if len(c.pending) > 0 {
		recs := c.pending
		c.pending = nil
		return c.deliver(recs)
	}
	recs, err := c.consumer.PollBlocking(max)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	return c.deliver(recs)
}
