// Package baseline implements the Cypher-only workaround that Section
// 3.3 of the Seraph paper analyzes and rejects: external driver code
// re-executes a one-time Cypher query on a fixed schedule against a
// fully merged, ever-growing property graph. The window must be encoded
// manually as timestamp predicates inside the query, the system has no
// continuous semantics to optimize for, every poll recomputes from
// scratch, and results are re-reported in full at every poll (no
// ON ENTERING / ON EXITING control).
//
// It exists as the comparison point for the benchmark suite: the
// paper's qualitative claim is that this approach degrades with total
// history size while Seraph's cost is bounded by window content.
package baseline

import (
	"fmt"
	"time"

	"seraph/internal/ast"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/ingest"
	"seraph/internal/parser"
	"seraph/internal/pg"
	"seraph/internal/value"
)

// Result is one poll's output.
type Result struct {
	At    time.Time
	Table *eval.Table
}

// Sink receives poll results.
type Sink func(Result)

// Poller periodically evaluates a one-time Cypher query over the
// merged graph.
type Poller struct {
	store *graphstore.Store
	query *ast.Query
	every time.Duration
	next  time.Time
	sink  Sink

	polls int
}

// New creates a poller for the given Cypher source, running every
// `every` starting at `start`.
func New(src string, start time.Time, every time.Duration, sink Sink) (*Poller, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if every <= 0 {
		return nil, fmt.Errorf("baseline: poll period must be positive")
	}
	return &Poller{
		store: graphstore.New(),
		query: q,
		every: every,
		next:  start,
		sink:  sink,
	}, nil
}

// Store exposes the merged graph (for inspection and size accounting).
func (p *Poller) Store() *graphstore.Store { return p.store }

// Polls returns the number of query executions so far.
func (p *Poller) Polls() int { return p.polls }

// Ingest merges an arriving event graph into the store. Nothing is
// ever evicted: the Cypher-only pipeline has no notion of windows, so
// the graph grows monotonically (the paper's core criticism).
func (p *Poller) Ingest(g *pg.Graph, ts time.Time) error {
	return ingest.MergeInto(p.store, g)
}

// AdvanceTo runs every poll that became due at or before ts.
func (p *Poller) AdvanceTo(ts time.Time) error {
	for !p.next.After(ts) {
		if err := p.poll(p.next); err != nil {
			return err
		}
		p.next = p.next.Add(p.every)
	}
	return nil
}

// Poll runs the query once at the given instant, regardless of
// schedule.
func (p *Poller) Poll(at time.Time) (*eval.Table, error) {
	ctx := &eval.Ctx{
		Store: p.store,
		Builtins: map[string]value.Value{
			"now": value.NewDateTime(at),
		},
	}
	out, err := eval.EvalQuery(ctx, p.query)
	if err != nil {
		return nil, err
	}
	p.polls++
	return out, nil
}

func (p *Poller) poll(at time.Time) error {
	out, err := p.Poll(at)
	if err != nil {
		return err
	}
	if p.sink != nil {
		p.sink(Result{At: at, Table: out})
	}
	return nil
}
