package baseline

import (
	"testing"
	"time"

	"seraph/internal/workload"
)

// TestPollerReproducesTable2: the Section 3.3 polling baseline over the
// Figure 1 events reports both trick users at the 15:40 poll.
func TestPollerReproducesTable2(t *testing.T) {
	var results []Result
	start := workload.FigureOneDay.Add(14*time.Hour + 45*time.Minute)
	p, err := New(workload.StudentTrickCypher, start, 5*time.Minute, func(r Result) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range workload.Figure1Stream() {
		if err := p.Ingest(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := p.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}
	if p.Polls() != 12 {
		t.Errorf("polls = %d, want 12 (every 5m from 14:45 to 15:40)", p.Polls())
	}
	last := results[len(results)-1]
	if !last.At.Equal(start.Add(55 * time.Minute)) {
		t.Errorf("last poll at %s", last.At.Format("15:04"))
	}
	if last.Table.Len() != 2 {
		t.Fatalf("15:40 poll rows = %d, want 2 (Table 2):\n%s", last.Table.Len(), last.Table)
	}
}

// TestPollerReReportsEverything demonstrates the baseline's drawback
// the paper criticizes: without emission control, every poll re-reports
// all current matches (no ON ENTERING).
func TestPollerReReportsEverything(t *testing.T) {
	var total int
	start := workload.FigureOneDay.Add(14*time.Hour + 45*time.Minute)
	p, err := New(workload.StudentTrickCypher, start, 5*time.Minute, func(r Result) {
		total += r.Table.Len()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range workload.Figure1Stream() {
		if err := p.Ingest(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := p.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}
	// Seraph's ON ENTERING emits exactly 2 rows over the same stream;
	// the baseline re-reports matches at every poll they are visible.
	if total <= 2 {
		t.Errorf("baseline should over-report, got %d total rows", total)
	}
}

// TestStoreGrowsWithoutBound: the baseline never evicts.
func TestStoreGrowsWithoutBound(t *testing.T) {
	cfg := workload.DefaultMicroMobilityConfig()
	gen := workload.NewMicroMobility(cfg)
	p, err := New(`MATCH (b:Bike)-[r:rentedAt]->(s:Station) RETURN count(*) AS n`,
		cfg.Start, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for i := 0; i < 30; i++ {
		el := gen.Next()
		if err := p.Ingest(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, p.Store().NumRels())
	}
	if sizes[len(sizes)-1] <= sizes[0] {
		t.Error("merged store should grow monotonically")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Error("baseline must never evict")
		}
	}
}

func TestPollerValidation(t *testing.T) {
	if _, err := New("NOT CYPHER", time.Now(), time.Minute, nil); err == nil {
		t.Error("bad query must fail")
	}
	if _, err := New("MATCH (n) RETURN n", time.Now(), 0, nil); err == nil {
		t.Error("zero period must fail")
	}
}

func TestManualPoll(t *testing.T) {
	start := workload.FigureOneDay.Add(14*time.Hour + 45*time.Minute)
	p, err := New(`MATCH (n) RETURN count(*) AS n`, start, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range workload.Figure1Stream() {
		if err := p.Ingest(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
	}
	out, err := p.Poll(start)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].Int() != 8 {
		t.Errorf("node count = %s", out.Rows[0][0])
	}
}
