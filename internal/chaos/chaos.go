package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
)

const (
	topicEvents = "chaos-events"
	topicDLQ    = "chaos-events-dlq"
)

// chaosBase anchors both the stream timestamps and the queries'
// STARTING AT instant; the query sources below must agree with it.
var chaosBase = time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

const srcSnapshot = `
REGISTER QUERY snap STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT8S
  WHERE r.v > 15
  EMIT s.name AS sensor, r.v AS v SNAPSHOT EVERY PT2S }`

const srcEntering = `
REGISTER QUERY entering STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT6S
  WHERE r.v > 10
  EMIT s.name AS sensor, r.v AS v ON ENTERING EVERY PT3S }`

// Plan is a fault schedule derived deterministically from a seed.
// Every knob at its zero value disables that fault, so a Plan also
// documents exactly which faults a failing seed exercised.
type Plan struct {
	Seed   int64
	Events int

	// QueueCapacity bounds the broker topic (0 = unbounded). Bounded
	// plans use PolicyDropOldest so overload surfaces as accounted
	// eviction rather than producer blocking.
	QueueCapacity int

	PollEvery int // consumer polls every n-th produced event
	BatchSize int // records per poll

	PoisonEvery int // every n-th payload is replaced with garbage
	DelayEvery  int // every n-th event is held back DelaySteps events
	DelaySteps  int
	RewindEvery int // every n-th poll rewinds the consumer (redelivery)

	// Shed plans give the engine a catch-up deadline on the virtual
	// clock and stall the sink past it, forcing explicit Skipped
	// results. Shed plans are SNAPSHOT-only: ON ENTERING output depends
	// on the previous evaluation, so a shed instant would change later
	// diffs and the runs would legitimately diverge.
	Shed       bool
	Deadline   time.Duration
	StallEvery int // every n-th sink invocation stalls the clock
	StallFor   time.Duration
	OnEntering bool

	// CheckpointAt, when positive, checkpoints the engine after that
	// event index and restores a fresh engine from the bytes mid-run.
	CheckpointAt int
}

// NewPlan derives a plan from seed. Distinct seeds cover distinct
// fault combinations; the same seed always yields the same plan.
func NewPlan(seed int64) Plan {
	r := rand.New(rand.NewSource(seed))
	p := Plan{
		Seed:      seed,
		Events:    60 + r.Intn(80),
		PollEvery: 1 + r.Intn(4),
		BatchSize: 1 + r.Intn(8),
	}
	if r.Intn(3) == 0 {
		// Bounded topic with a consumer that cannot keep up, so
		// PolicyDropOldest actually evicts: produce ~1/event, consume
		// at most 2 every 3-4 events.
		p.QueueCapacity = 4 + r.Intn(12)
		p.PollEvery = 3 + r.Intn(2)
		p.BatchSize = 1 + r.Intn(2)
	}
	if r.Intn(3) > 0 {
		p.PoisonEvery = 11 + r.Intn(10)
	}
	if r.Intn(2) == 0 {
		p.DelayEvery = 9 + r.Intn(8)
		p.DelaySteps = 2 + r.Intn(5)
	}
	if r.Intn(2) == 0 {
		p.RewindEvery = 3 + r.Intn(4)
	}
	p.Shed = r.Intn(2) == 0
	if p.Shed {
		p.Deadline = 100 * time.Millisecond
		p.StallEvery = 4 + r.Intn(6)
		p.StallFor = 150 * time.Millisecond
	} else {
		p.OnEntering = r.Intn(2) == 0
	}
	if r.Intn(2) == 0 {
		p.CheckpointAt = p.Events/3 + r.Intn(p.Events/3)
	}
	return p
}

type querySpec struct{ name, src string }

func (p Plan) queries() []querySpec {
	qs := []querySpec{{"snap", srcSnapshot}}
	if p.OnEntering {
		qs = append(qs, querySpec{"entering", srcEntering})
	}
	return qs
}

// Instant is one evaluation instant's outcome: either a sorted bag of
// row digests, or an explicit Skipped marker for a shed evaluation.
type Instant struct {
	Skipped bool     `json:"skipped,omitempty"`
	Rows    []string `json:"rows"`
}

// Report holds both runs' results and the fault run's accounting
// counters; Verify checks them against each other.
type Report struct {
	Plan         Plan
	Produced     int64 // records accepted by the broker topic
	Applied      int64 // pushes that reached the engine (the op log)
	Deadlettered int64 // poison records quarantined to the DLQ
	Dropped      int64 // records evicted by PolicyDropOldest
	Duplicates   int64 // redeliveries suppressed by offset dedup
	Shed         int64 // evaluation instants shed under the deadline

	// Fault and Replay map query name → instant (UnixNano) → outcome.
	Fault  map[string]map[int64]Instant
	Replay map[string]map[int64]Instant
}

// event is one pre-generated stream element.
type event struct {
	payload []byte
	ts      time.Time
}

// genEvents builds the plan's stream: strictly increasing timestamps
// (1-3s apart), three sensors, one READ relationship per event.
func genEvents(plan Plan) []event {
	return genStream(plan.Seed, plan.Events)
}

// genStream is the seeded stream generator shared by the fault and
// crash-recovery harnesses.
func genStream(seed int64, n int) []event {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	ts := chaosBase
	evs := make([]event, n)
	for i := range evs {
		ts = ts.Add(time.Duration(1+r.Intn(3)) * time.Second)
		sid := int64(1 + r.Intn(3))
		g := pg.New()
		g.AddNode(&value.Node{ID: sid, Labels: []string{"Sensor"}, Props: map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("s%d", sid))}})
		g.AddNode(&value.Node{ID: 100, Labels: []string{"Zone"}, Props: map[string]value.Value{}})
		if err := g.AddRel(&value.Relationship{ID: int64(1000 + i), StartID: sid, EndID: 100,
			Type: "READ", Props: map[string]value.Value{"v": value.NewInt(r.Int63n(40))}}); err != nil {
			panic(err)
		}
		payload, err := ingest.Encode(g, ts)
		if err != nil {
			panic(err)
		}
		evs[i] = event{payload: payload, ts: ts}
	}
	return evs
}

// op is one operation that reached the engine during the fault run —
// the ground truth the replay re-executes verbatim.
type op struct {
	advance bool
	ts      time.Time
	g       *pg.Graph
}

type harness struct {
	plan    Plan
	faulty  bool
	clock   *Clock
	eng     *engine.Engine
	broker  *queue.Broker
	conn    *ingest.Connector
	results map[string]map[int64]Instant
	resultN int
	oplog   []op
}

func newHarness(plan Plan, faulty bool) *harness {
	return &harness{
		plan:    plan,
		faulty:  faulty,
		clock:   NewClock(chaosBase),
		results: map[string]map[int64]Instant{},
	}
}

func (h *harness) engineOpts() []engine.Option {
	opts := []engine.Option{engine.WithParallelism(1)}
	if h.faulty && h.plan.Shed {
		opts = append(opts,
			engine.WithEvalDeadline(h.plan.Deadline),
			engine.WithWallClock(h.clock.Now))
	}
	return opts
}

// sinkFor records results (and, in the fault run, stalls the virtual
// clock on the plan's cadence). Its signature matches what
// engine.Restore needs to re-wire sinks after a mid-run restore.
func (h *harness) sinkFor(string) engine.Sink {
	return func(res engine.Result) {
		h.resultN++
		if h.faulty && h.plan.StallEvery > 0 && h.resultN%h.plan.StallEvery == 0 {
			h.clock.Sleep(h.plan.StallFor)
		}
		qr := h.results[res.Query]
		if qr == nil {
			qr = map[int64]Instant{}
			h.results[res.Query] = qr
		}
		at := res.At.UnixNano()
		if res.Skipped {
			qr[at] = Instant{Skipped: true, Rows: []string{}}
			return
		}
		qr[at] = Instant{Rows: digestRows(res.Table)}
	}
}

func (h *harness) register(eng *engine.Engine) error {
	for _, qs := range h.plan.queries() {
		if _, err := eng.RegisterSource(qs.src, h.sinkFor(qs.name)); err != nil {
			return fmt.Errorf("chaos: register %s: %w", qs.name, err)
		}
	}
	return nil
}

// push is the connector's sink: deliveries that the engine accepts are
// appended to the op log so the replay can re-execute exactly them.
func (h *harness) push(g *pg.Graph, ts time.Time) error {
	if err := h.eng.Push(g, ts); err != nil {
		return err
	}
	h.oplog = append(h.oplog, op{ts: ts, g: g})
	return nil
}

func (h *harness) advance() error { return h.advanceTo(h.eng.Now()) }

func (h *harness) advanceTo(ts time.Time) error {
	h.oplog = append(h.oplog, op{advance: true, ts: ts})
	return h.eng.AdvanceTo(ts)
}

// checkpointRestore serializes the engine and swaps in a fresh one
// restored from the bytes — the crash-recovery fault. The connector's
// sink closure reads h.eng on every push, so it follows the swap.
func (h *harness) checkpointRestore() error {
	var buf bytes.Buffer
	if err := h.eng.Checkpoint(&buf); err != nil {
		return fmt.Errorf("chaos: checkpoint: %w", err)
	}
	restored, err := engine.Restore(&buf, h.sinkFor, h.engineOpts()...)
	if err != nil {
		return fmt.Errorf("chaos: restore: %w", err)
	}
	h.eng = restored
	return nil
}

// runFaulty executes the plan: events flow through a real broker
// topic and connector into the engine, with faults injected per the
// schedule.
func (h *harness) runFaulty(events []event) error {
	h.eng = engine.New(h.engineOpts()...)
	if err := h.register(h.eng); err != nil {
		return err
	}
	h.broker = queue.NewBroker()
	cfg := queue.TopicConfig{Partitions: 1}
	if h.plan.QueueCapacity > 0 {
		cfg.Capacity = h.plan.QueueCapacity
		cfg.Policy = queue.PolicyDropOldest
	}
	if err := h.broker.CreateTopicWith(topicEvents, cfg); err != nil {
		return err
	}
	conn, err := ingest.NewConnector(h.broker, topicEvents, h.push,
		ingest.WithDeadLetter(topicDLQ),
		ingest.WithConnectorClock(h.clock.Now, h.clock.Sleep))
	if err != nil {
		return err
	}
	h.conn = conn

	frng := rand.New(rand.NewSource(h.plan.Seed + 7))
	polls := 0
	poll := func() error {
		polls++
		if h.plan.RewindEvery > 0 && polls%h.plan.RewindEvery == 0 {
			h.conn.Consumer().Rewind(1 + frng.Int63n(3))
		}
		n, err := h.conn.Poll(h.plan.BatchSize)
		if err != nil {
			return err
		}
		if n > 0 {
			return h.advance()
		}
		return nil
	}

	delayed := map[int][]event{}
	for i, ev := range events {
		for _, d := range delayed[i] {
			if _, err := h.broker.Produce(topicEvents, "", d.payload, d.ts); err != nil {
				return err
			}
		}
		delete(delayed, i)
		payload := ev.payload
		if h.plan.PoisonEvery > 0 && (i+1)%h.plan.PoisonEvery == 0 {
			payload = []byte(`{"corrupt":`)
		}
		if h.plan.DelayEvery > 0 && (i+1)%h.plan.DelayEvery == 0 {
			// Held back: it arrives DelaySteps events late, out of
			// timestamp order, and the engine quarantines it.
			at := i + 1 + h.plan.DelaySteps
			delayed[at] = append(delayed[at], event{payload: payload, ts: ev.ts})
		} else if _, err := h.broker.Produce(topicEvents, "", payload, ev.ts); err != nil {
			return err
		}
		if (i+1)%h.plan.PollEvery == 0 {
			if err := poll(); err != nil {
				return err
			}
		}
		if h.plan.CheckpointAt > 0 && i == h.plan.CheckpointAt {
			if err := h.checkpointRestore(); err != nil {
				return err
			}
		}
	}
	// Stragglers whose release index lies past the last event.
	var late []int
	for k := range delayed {
		late = append(late, k)
	}
	sort.Ints(late)
	for _, k := range late {
		for _, d := range delayed[k] {
			if _, err := h.broker.Produce(topicEvents, "", d.payload, d.ts); err != nil {
				return err
			}
		}
	}
	// Drain the topic and the connector's retained remainder.
	for {
		n, err := h.conn.Poll(64)
		if err != nil {
			return err
		}
		if n > 0 {
			if err := h.advance(); err != nil {
				return err
			}
			continue
		}
		lag, err := h.conn.Consumer().Lag()
		if err != nil {
			return err
		}
		if lag == 0 && h.conn.Pending() == 0 {
			break
		}
	}
	// Flush trailing windows well past the last element.
	if len(events) > 0 {
		return h.advanceTo(events[len(events)-1].ts.Add(12 * time.Second))
	}
	return nil
}

// replay re-executes the fault run's op log on a fresh, fault-free
// engine. Every push must be accepted: the log records only operations
// the fault run's engine accepted, in order.
func (h *harness) replay(oplog []op) error {
	h.eng = engine.New(h.engineOpts()...)
	if err := h.register(h.eng); err != nil {
		return err
	}
	for _, o := range oplog {
		if o.advance {
			if err := h.eng.AdvanceTo(o.ts); err != nil {
				return fmt.Errorf("chaos: replay advance to %s: %w", o.ts.Format(time.RFC3339), err)
			}
			continue
		}
		if err := h.eng.Push(o.g, o.ts); err != nil {
			return fmt.Errorf("chaos: replay push at %s: %w", o.ts.Format(time.RFC3339), err)
		}
	}
	return nil
}

// Run executes the seed's fault run and its fault-free replay and
// returns the combined report. The report is returned (as far as it
// was filled) even on error, for failure artifacts.
func Run(plan Plan) (*Report, error) {
	rep := &Report{Plan: plan}
	events := genEvents(plan)

	f := newHarness(plan, true)
	ferr := f.runFaulty(events)
	rep.Fault = f.results
	if f.broker != nil {
		if st, err := f.broker.Stats(topicEvents); err == nil {
			rep.Produced, rep.Dropped = st.Produced, st.Dropped
		}
	}
	if f.conn != nil {
		rep.Deadlettered = f.conn.Deadlettered()
		rep.Duplicates = f.conn.Duplicates()
	}
	for _, o := range f.oplog {
		if !o.advance {
			rep.Applied++
		}
	}
	if f.eng != nil {
		for _, q := range f.eng.Queries() {
			rep.Shed += int64(q.Stats().Shed)
		}
	}
	if ferr != nil {
		return rep, fmt.Errorf("chaos: fault run (seed %d): %w", plan.Seed, ferr)
	}

	r := newHarness(plan, false)
	if err := r.replay(f.oplog); err != nil {
		return rep, err
	}
	rep.Replay = r.results
	return rep, nil
}

// Verify is the differential oracle:
//
//  1. Every instant the fault-free replay evaluated must appear in the
//     fault run — either with an identical row bag, or as an explicit
//     Skipped result (a shed evaluation). Anything else is silent
//     result loss.
//  2. The fault run must not invent results the replay disagrees with.
//  3. The number of Skipped results must equal the engine's shed
//     counter, and every record the broker accepted must be accounted
//     for: applied to the engine, quarantined to the dead-letter
//     topic, or evicted by the bounded queue's drop policy.
func (r *Report) Verify() error {
	var skipped int64
	for name, got := range r.Fault {
		ref := r.Replay[name]
		for at, gi := range got {
			if gi.Skipped {
				skipped++
				continue
			}
			ri, ok := ref[at]
			if !ok {
				return fmt.Errorf("chaos: query %s: fault run emitted a result at %s the fault-free replay never evaluated",
					name, time.Unix(0, at).UTC().Format(time.RFC3339))
			}
			if !equalRows(gi.Rows, ri.Rows) {
				return fmt.Errorf("chaos: query %s at %s: fault run rows %v != replay rows %v",
					name, time.Unix(0, at).UTC().Format(time.RFC3339), gi.Rows, ri.Rows)
			}
		}
		for at := range ref {
			if _, ok := got[at]; !ok {
				return fmt.Errorf("chaos: query %s: instant %s missing from fault run (silent loss)",
					name, time.Unix(0, at).UTC().Format(time.RFC3339))
			}
		}
	}
	var instants int
	for _, m := range r.Replay {
		instants += len(m)
	}
	if instants == 0 {
		return fmt.Errorf("chaos: replay produced no evaluation instants — degenerate run")
	}
	if skipped != r.Shed {
		return fmt.Errorf("chaos: %d skipped results delivered vs %d instants counted shed — gap unaccounted", skipped, r.Shed)
	}
	if r.Produced != r.Applied+r.Deadlettered+r.Dropped {
		return fmt.Errorf("chaos: input accounting: produced %d != applied %d + deadlettered %d + dropped %d",
			r.Produced, r.Applied, r.Deadlettered, r.Dropped)
	}
	return nil
}

func digestRows(t *eval.Table) []string {
	rows := []string{}
	if t == nil {
		return rows
	}
	for i := range t.Rows {
		rows = append(rows, t.RowKey(i))
	}
	sort.Strings(rows)
	return rows
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
