package chaos

// recovery.go is the crash-recovery differential harness: a seeded run
// drives events through a durable broker (internal/queue OpenDurable)
// into a checkpointing engine, kills the process model at a scheduled
// kill point — after a WAL append but before its fsync, in the middle
// of writing a checkpoint, or in the middle of recovery itself — then
// recovers from the surviving directory and finishes the stream. The
// union of results emitted before and after the crash must be
// bag-identical to an uncrashed in-memory oracle over the same events,
// and every divergence from a clean run must be explained by a counter
// (records re-produced into the fsync loss window, redeliveries
// suppressed by offset dedup, instants re-emitted across the crash).
//
// The "crash" is abandonment: the broker, engine and checkpointer are
// dropped without any close or flush, exactly as a SIGKILL would leave
// them, and the fault (torn WAL tail, checkpoint debris) is then
// inflicted directly on the directory.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/queue"
	"seraph/internal/wal"
)

// KillPoint selects where in the durability pipeline the simulated
// crash lands.
type KillPoint int

const (
	// KillNone shuts down gracefully (log closed, no final checkpoint),
	// so recovery still exercises replay of the log suffix past the
	// last checkpoint.
	KillNone KillPoint = iota
	// KillAfterAppend crashes after records were appended and
	// acknowledged but before the OS flushed them (fsync=never): the
	// unsynced WAL tail is truncated away, modelling the documented
	// loss window. Lost records are re-produced at identical offsets.
	KillAfterAppend
	// KillMidCheckpoint crashes while a checkpoint is being written:
	// the directory is littered with a torn temp file, an unreferenced
	// checkpoint and a torn manifest rename, all of which recovery must
	// ignore.
	KillMidCheckpoint
	// KillMidRecovery crashes during recovery itself: a first recovery
	// is started and abandoned mid-way, then recovery runs again — it
	// must be idempotent because a machine can always die twice.
	KillMidRecovery
)

func (k KillPoint) String() string {
	switch k {
	case KillNone:
		return "none"
	case KillAfterAppend:
		return "after-append"
	case KillMidCheckpoint:
		return "mid-checkpoint"
	case KillMidRecovery:
		return "mid-recovery"
	}
	return fmt.Sprintf("KillPoint(%d)", int(k))
}

// RecoveryPlan is a seeded crash schedule. Like Plan, a zero knob
// disables its fault, so the plan documents what a failing seed did.
type RecoveryPlan struct {
	Seed            int64
	Events          int
	CheckpointEvery int   // checkpoint after this many delivered events
	SegmentBytes    int64 // small segments so compaction really deletes
	PollEvery       int   // deliver every n-th produced event
	BatchSize       int
	Fsync           wal.Policy
	Kill            KillPoint
	KillAt          int   // event index at which the crash fires
	LoseTail        int64 // bytes cut from the unsynced WAL tail (KillAfterAppend)
	OnEntering      bool  // also run the ON ENTERING query
}

// NewRecoveryPlan derives a crash plan from seed; the same seed always
// yields the same plan.
func NewRecoveryPlan(seed int64) RecoveryPlan {
	r := rand.New(rand.NewSource(seed))
	p := RecoveryPlan{
		Seed:            seed,
		Events:          40 + r.Intn(60),
		CheckpointEvery: 3 + r.Intn(8),
		SegmentBytes:    192 + int64(r.Intn(512)),
		PollEvery:       1 + r.Intn(3),
		BatchSize:       1 + r.Intn(4),
		Kill:            KillPoint(r.Intn(4)),
		OnEntering:      r.Intn(2) == 0,
	}
	p.KillAt = p.Events/3 + r.Intn(p.Events/2)
	if p.Kill == KillAfterAppend {
		// Tail loss requires a loss window; the other kill points run
		// under fsync=always so acknowledged records must all survive.
		p.Fsync = wal.FsyncNever
		p.LoseTail = int64(1 + r.Intn(96))
	}
	return p
}

// RecoveryReport holds both halves of a crashed run, the oracle, and
// the counters that must explain every divergence.
type RecoveryReport struct {
	Plan RecoveryPlan

	// Pre/Post/Oracle map query name → instant (UnixNano) → outcome.
	Pre    map[string]map[int64]Instant
	Post   map[string]map[int64]Instant
	Oracle map[string]map[int64]Instant

	Recovered     bool    // a checkpoint existed at recovery time
	CheckpointSeq int     // recovered manifest sequence (0 if none)
	ReplayFrom    []int64 // manifest offsets ingestion resumed from
	LogEnd        int64   // end offset of the log after reopen
	Produced      int64   // records acknowledged before the crash
	Reproduced    int64   // acknowledged records lost to the fsync window and re-produced
	Duplicates    int64   // post-recovery redeliveries suppressed by dedup
	ReEmitted     int64   // instants emitted on both sides of the crash (set by Verify)
}

// crashState is what the "process" knew when it died — the driver uses
// it to continue the stream, never to help recovery.
type crashState struct {
	produced   int64
	syncedSeg  string // active segment path at the last WAL sync
	syncedSize int64  // its size then: the tail-loss floor
}

func cpDirOf(dir string) string { return filepath.Join(dir, "checkpoints") }
func queueDirOf(dir string) string {
	return filepath.Join(dir, "queue")
}
func walDirOf(dir string) string {
	return filepath.Join(queueDirOf(dir), "wal", topicEvents, "p0")
}

func (p RecoveryPlan) durableConfig() queue.DurableConfig {
	return queue.DurableConfig{Fsync: p.Fsync, SegmentBytes: p.SegmentBytes}
}

func recoveryQueries(p RecoveryPlan) []querySpec {
	qs := []querySpec{{"snap", srcSnapshot}}
	if p.OnEntering {
		qs = append(qs, querySpec{"entering", srcEntering})
	}
	return qs
}

// resultRecorder returns a sink factory recording every delivered
// instant into the given map; its signature matches engine.Recover's
// sink rebinding.
func resultRecorder(into map[string]map[int64]Instant) func(string) engine.Sink {
	return func(string) engine.Sink {
		return func(res engine.Result) {
			qr := into[res.Query]
			if qr == nil {
				qr = map[int64]Instant{}
				into[res.Query] = qr
			}
			if res.Skipped {
				qr[res.At.UnixNano()] = Instant{Skipped: true, Rows: []string{}}
				return
			}
			qr[res.At.UnixNano()] = Instant{Rows: digestRows(res.Table)}
		}
	}
}

func registerRecovery(p RecoveryPlan, eng *engine.Engine, into map[string]map[int64]Instant) error {
	rec := resultRecorder(into)
	for _, qs := range recoveryQueries(p) {
		if _, err := eng.RegisterSource(qs.src, rec(qs.name)); err != nil {
			return fmt.Errorf("chaos: register %s: %w", qs.name, err)
		}
	}
	return nil
}

// RunRecovery executes the plan's crashed run in dir (which must be
// empty), recovers, and returns the report. The report is returned as
// far as it was filled even on error, for failure artifacts.
func RunRecovery(dir string, plan RecoveryPlan) (*RecoveryReport, error) {
	rep := &RecoveryReport{
		Plan:   plan,
		Pre:    map[string]map[int64]Instant{},
		Post:   map[string]map[int64]Instant{},
		Oracle: map[string]map[int64]Instant{},
	}
	events := genStream(plan.Seed, plan.Events)

	cs, err := runUntilCrash(dir, plan, events, rep)
	rep.Produced = cs.produced
	if err != nil {
		return rep, fmt.Errorf("chaos: crashed run (seed %d): %w", plan.Seed, err)
	}
	if plan.Kill == KillAfterAppend {
		if err := loseTail(dir, plan, cs); err != nil {
			return rep, fmt.Errorf("chaos: tail loss (seed %d): %w", plan.Seed, err)
		}
	}
	if err := runRecovered(dir, plan, events, cs, rep); err != nil {
		return rep, fmt.Errorf("chaos: recovered run (seed %d): %w", plan.Seed, err)
	}
	if err := runOracle(plan, events, rep.Oracle); err != nil {
		return rep, fmt.Errorf("chaos: oracle run (seed %d): %w", plan.Seed, err)
	}
	return rep, nil
}

// runUntilCrash produces events into the durable broker, delivering
// and checkpointing on the plan's cadence, until the kill point (or,
// for KillNone, the end of the stream followed by a graceful close
// without a final checkpoint). On a crash everything is abandoned
// un-closed, as a real kill would leave it.
func runUntilCrash(dir string, plan RecoveryPlan, events []event, rep *RecoveryReport) (crashState, error) {
	var cs crashState
	b, err := queue.OpenDurable(queueDirOf(dir), plan.durableConfig())
	if err != nil {
		return cs, err
	}
	if err := b.CreateTopicWith(topicEvents, queue.TopicConfig{Partitions: 1}); err != nil {
		return cs, err
	}
	eng := engine.New(engine.WithParallelism(1))
	if err := registerRecovery(plan, eng, rep.Pre); err != nil {
		return cs, err
	}
	conn, err := ingest.NewConnector(b, topicEvents, eng.Push, ingest.WithDeadLetter(topicDLQ))
	if err != nil {
		return cs, err
	}
	ck, err := eng.NewCheckpointer(cpDirOf(dir))
	if err != nil {
		return cs, err
	}

	delivered, lastCk := 0, 0
	checkpoint := func() error {
		// Same barrier order as the server: sync, persist offsets,
		// compact below them.
		if err := b.SyncWAL(); err != nil {
			return err
		}
		offsets := conn.AppliedOffsets()
		if err := ck.Save(map[string][]int64{topicEvents: offsets}); err != nil {
			return err
		}
		for p, off := range offsets {
			if err := b.CompactTopic(topicEvents, p, off); err != nil {
				return err
			}
		}
		cs.syncedSeg, cs.syncedSize, err = activeSegment(walDirOf(dir))
		return err
	}

	for i, ev := range events {
		if _, err := b.Produce(topicEvents, "", ev.payload, ev.ts); err != nil {
			return cs, err
		}
		cs.produced++
		if plan.Kill != KillNone && i == plan.KillAt {
			if plan.Kill == KillMidCheckpoint {
				if err := scatterCheckpointDebris(cpDirOf(dir)); err != nil {
					return cs, err
				}
			}
			return cs, nil // crash: no close, no sync, no final checkpoint
		}
		if (i+1)%plan.PollEvery != 0 {
			continue
		}
		n, err := conn.Poll(plan.BatchSize)
		if err != nil {
			return cs, err
		}
		if n == 0 {
			continue
		}
		if err := eng.AdvanceTo(eng.Now()); err != nil {
			return cs, err
		}
		delivered += n
		if delivered-lastCk >= plan.CheckpointEvery {
			if err := checkpoint(); err != nil {
				return cs, err
			}
			lastCk = delivered
		}
	}
	// KillNone: drain fully, then close WITHOUT a final checkpoint so
	// recovery still has a log suffix to replay.
	for {
		n, err := conn.Poll(64)
		if err != nil {
			return cs, err
		}
		if n > 0 {
			if err := eng.AdvanceTo(eng.Now()); err != nil {
				return cs, err
			}
			continue
		}
		lag, err := conn.Consumer().Lag()
		if err != nil {
			return cs, err
		}
		if lag == 0 && conn.Pending() == 0 {
			break
		}
	}
	return cs, b.CloseDurable()
}

// loseTail models the fsync=never loss window: the bytes appended to
// the active segment since the last explicit sync may not have reached
// the disk, so the crash cuts up to LoseTail of them (never below the
// synced floor — those were flushed by the checkpoint barrier). A cut
// landing mid-frame leaves a torn tail for wal.Open to truncate.
func loseTail(dir string, plan RecoveryPlan, cs crashState) error {
	path, size, err := activeSegment(walDirOf(dir))
	if err != nil {
		return err
	}
	floor := int64(0)
	if path == cs.syncedSeg {
		floor = cs.syncedSize
	}
	target := size - plan.LoseTail
	if target < floor {
		target = floor
	}
	return os.Truncate(path, target)
}

// activeSegment returns the path and size of the highest-based WAL
// segment file.
func activeSegment(walDir string) (string, int64, error) {
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return "", 0, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", 0, fmt.Errorf("chaos: no segments in %s", walDir)
	}
	sort.Strings(names)
	path := filepath.Join(walDir, names[len(names)-1])
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	return path, fi.Size(), nil
}

// scatterCheckpointDebris litters the checkpoint directory with what a
// crash mid-save leaves behind: a torn temp file, a checkpoint no
// manifest references, and a torn manifest rename. Recovery must
// ignore all of it (the manifest written last is the commit point).
func scatterCheckpointDebris(cpDir string) error {
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		return err
	}
	for _, f := range []struct{ name, data string }{
		{"cp-000999-full.json.tmp", `{"torn mid-wri`},
		{"cp-000998-delta.json", `{"queries": "never referenced by any manifest"}`},
		{"MANIFEST.json.tmp", `{"seq": 99, "torn`},
	} {
		if err := os.WriteFile(filepath.Join(cpDir, f.name), []byte(f.data), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runRecovered reopens the directory, recovers the engine from its
// checkpoints, resumes ingestion at the manifest offsets, re-produces
// any acknowledged records the loss window ate, finishes the stream
// and shuts down cleanly.
func runRecovered(dir string, plan RecoveryPlan, events []event, cs crashState, rep *RecoveryReport) error {
	if plan.Kill == KillMidRecovery {
		// First recovery attempt: opened, half-used, abandoned without
		// any close — the second attempt below must not notice.
		b0, err := queue.OpenDurable(queueDirOf(dir), plan.durableConfig())
		if err != nil {
			return fmt.Errorf("first recovery: %w", err)
		}
		discard := map[string]map[int64]Instant{}
		if _, _, err := engine.Recover(cpDirOf(dir), resultRecorder(discard), engine.WithParallelism(1)); err != nil && !errors.Is(err, engine.ErrNoCheckpoint) {
			return fmt.Errorf("first recovery: %w", err)
		}
		_ = b0 // abandoned
	}

	b, err := queue.OpenDurable(queueDirOf(dir), plan.durableConfig())
	if err != nil {
		return err
	}
	eng, info, err := engine.Recover(cpDirOf(dir), resultRecorder(rep.Post), engine.WithParallelism(1))
	var applied []int64
	switch {
	case err == nil:
		rep.Recovered = true
		rep.CheckpointSeq = info.Seq
		applied = info.Offsets[topicEvents]
		rep.ReplayFrom = append([]int64(nil), applied...)
	case errors.Is(err, engine.ErrNoCheckpoint):
		// Crash before the first checkpoint: cold start, full replay.
		eng = engine.New(engine.WithParallelism(1))
		if err := registerRecovery(plan, eng, rep.Post); err != nil {
			return err
		}
	default:
		return err
	}
	connOpts := []ingest.ConnectorOption{ingest.WithDeadLetter(topicDLQ)}
	if applied != nil {
		connOpts = append(connOpts, ingest.WithAppliedOffsets(applied))
	}
	conn, err := ingest.NewConnector(b, topicEvents, eng.Push, connOpts...)
	if err != nil {
		return err
	}
	ck, err := eng.NewCheckpointer(cpDirOf(dir))
	if err != nil {
		return err
	}

	end, err := b.EndOffset(topicEvents, 0)
	if err != nil {
		return err
	}
	rep.LogEnd = end
	if end < cs.produced {
		rep.Reproduced = cs.produced - end
	}

	// Continue the stream: the producer re-sends acknowledged records
	// the loss window ate (identical payloads land at their original
	// offsets, so offsets stay stable) and then everything it never got
	// to produce.
	delivered, lastCk := 0, 0
	deliver := func(max int) error {
		n, err := conn.Poll(max)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := eng.AdvanceTo(eng.Now()); err != nil {
			return err
		}
		delivered += n
		if delivered-lastCk >= plan.CheckpointEvery {
			if err := b.SyncWAL(); err != nil {
				return err
			}
			if err := ck.Save(map[string][]int64{topicEvents: conn.AppliedOffsets()}); err != nil {
				return err
			}
			lastCk = delivered
		}
		return nil
	}
	for i := end; i < int64(len(events)); i++ {
		r, err := b.Produce(topicEvents, "", events[i].payload, events[i].ts)
		if err != nil {
			return err
		}
		if r.Offset != i {
			return fmt.Errorf("re-produced event %d landed at offset %d", i, r.Offset)
		}
		if (i+1)%int64(plan.PollEvery) == 0 {
			if err := deliver(plan.BatchSize); err != nil {
				return err
			}
		}
	}
	for {
		n, err := conn.Poll(64)
		if err != nil {
			return err
		}
		if n > 0 {
			if err := eng.AdvanceTo(eng.Now()); err != nil {
				return err
			}
			continue
		}
		lag, err := conn.Consumer().Lag()
		if err != nil {
			return err
		}
		if lag == 0 && conn.Pending() == 0 {
			break
		}
	}
	// Flush trailing windows, checkpoint once more, close for real.
	if len(events) > 0 {
		if err := eng.AdvanceTo(events[len(events)-1].ts.Add(12 * time.Second)); err != nil {
			return err
		}
	}
	if err := b.SyncWAL(); err != nil {
		return err
	}
	if err := ck.Save(map[string][]int64{topicEvents: conn.AppliedOffsets()}); err != nil {
		return err
	}
	rep.Duplicates = conn.Duplicates()
	return b.CloseDurable()
}

// runOracle replays the full stream on a plain in-memory engine with
// no broker, no checkpoints and no crash — the ground truth.
func runOracle(plan RecoveryPlan, events []event, into map[string]map[int64]Instant) error {
	eng := engine.New(engine.WithParallelism(1))
	if err := registerRecovery(plan, eng, into); err != nil {
		return err
	}
	for _, ev := range events {
		g, ts, err := ingest.Decode(ev.payload)
		if err != nil {
			return err
		}
		if err := eng.Push(g, ts); err != nil {
			return err
		}
		if err := eng.AdvanceTo(eng.Now()); err != nil {
			return err
		}
	}
	if len(events) == 0 {
		return nil
	}
	return eng.AdvanceTo(events[len(events)-1].ts.Add(12 * time.Second))
}

// Verify is the crash-recovery differential oracle:
//
//  1. Acknowledged records may only be lost (and re-produced) under a
//     lossy fsync policy, and post-recovery redelivery must never
//     reach the engine twice (dedup suppresses it).
//  2. An instant emitted on both sides of the crash must carry the
//     same rows — re-emission is allowed (the client sees at-least-
//     once delivery of instants), contradiction is not.
//  3. The union of pre- and post-crash instants must be bag-identical
//     to the uncrashed oracle: nothing lost, nothing invented.
func (r *RecoveryReport) Verify() error {
	if r.Reproduced > 0 && r.Plan.Fsync == wal.FsyncAlways {
		return fmt.Errorf("chaos: %d acknowledged records lost under fsync=always", r.Reproduced)
	}
	if r.Duplicates != 0 {
		return fmt.Errorf("chaos: %d redeliveries reached dedup — recovered offsets were not sought correctly", r.Duplicates)
	}
	union := map[string]map[int64]Instant{}
	put := func(name string, at int64, in Instant) {
		qr := union[name]
		if qr == nil {
			qr = map[int64]Instant{}
			union[name] = qr
		}
		qr[at] = in
	}
	for name, m := range r.Pre {
		for at, in := range m {
			put(name, at, in)
		}
	}
	r.ReEmitted = 0
	for name, m := range r.Post {
		for at, in := range m {
			if prev, ok := union[name][at]; ok {
				r.ReEmitted++
				if !equalRows(prev.Rows, in.Rows) {
					return fmt.Errorf("chaos: query %s at %s: pre-crash rows %v contradict post-recovery rows %v",
						name, time.Unix(0, at).UTC().Format(time.RFC3339), prev.Rows, in.Rows)
				}
				continue
			}
			put(name, at, in)
		}
	}
	if len(union) != len(r.Oracle) {
		return fmt.Errorf("chaos: crashed run answered %d queries, oracle %d", len(union), len(r.Oracle))
	}
	var instants int
	for name, om := range r.Oracle {
		gm := union[name]
		for at, oi := range om {
			instants++
			gi, ok := gm[at]
			if !ok {
				return fmt.Errorf("chaos: query %s: instant %s lost across the crash",
					name, time.Unix(0, at).UTC().Format(time.RFC3339))
			}
			if !equalRows(gi.Rows, oi.Rows) {
				return fmt.Errorf("chaos: query %s at %s: crashed-run rows %v != oracle rows %v",
					name, time.Unix(0, at).UTC().Format(time.RFC3339), gi.Rows, oi.Rows)
			}
		}
		for at := range gm {
			if _, ok := om[at]; !ok {
				return fmt.Errorf("chaos: query %s: instant %s emitted but never evaluated by the oracle",
					name, time.Unix(0, at).UTC().Format(time.RFC3339))
			}
		}
	}
	if instants == 0 {
		return fmt.Errorf("chaos: oracle produced no evaluation instants — degenerate run")
	}
	return nil
}
