// Package chaos is a deterministic fault-injection harness for the
// ingestion pipeline: a seeded plan drives poison records, reordering,
// redelivery, bounded-queue eviction, sink stalls with deadline
// shedding, and mid-run checkpoint/restore through the real
// queue → connector → engine stack, records the operations that
// actually reached the engine, replays them fault-free, and checks the
// two runs against each other — every result delivered under faults
// must match the fault-free run, and every gap must be accounted for
// by an observable counter (dead-letter, drop, shed). No silent loss.
package chaos

import (
	"sync"
	"time"
)

// Clock is a virtual wall clock shared by every time-dependent
// component of a chaos run (the engine's shed deadline, the
// connector's batch deadline and backoff sleeps, the stalling sink).
// Sleep advances the clock instantly instead of blocking, so a run
// that models seconds of stall completes in microseconds and — unlike
// time.Now — behaves identically on every execution of the same seed.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking.
func (c *Clock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
