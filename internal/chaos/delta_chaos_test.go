package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/pg"
	"seraph/internal/value"
)

// TestDeltaEvalChaosMutations drives delta-driven and full evaluation
// from the same chaos clock with sub-second timestamps, so evaluation
// instants slice between events and the rolling store mutates in place
// (labels withdrawn, properties appearing and expiring) mid-window.
// The scheduled queries evaluate concurrently, so -race covers the
// maintained delta state. Result bags must be identical per instant,
// and the delta engine must have answered every instant incrementally.
func TestDeltaEvalChaosMutations(t *testing.T) {
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	r := rand.New(rand.NewSource(7))
	clk := NewClock(start)
	type event struct {
		g  *pg.Graph
		at time.Time
	}
	var events []event
	for i := 0; i < 60; i++ {
		clk.Advance(time.Duration(500+r.Intn(4000)) * time.Millisecond)
		events = append(events, event{chaosDeltaEvent(r, i), clk.Now()})
	}

	bodies := []struct{ name, body string }{
		{"flat", `MATCH (a:P)-[r:F]->(b:P)
  WITHIN PT20S
  WHERE r.v > 1
  EMIT a.k AS ak, b.k AS bk, r.v AS v
  %s EVERY PT7S`},
		{"trail", `MATCH (a:P)-[rs:F*1..2]->(b:P)
  WITHIN PT15S
  EMIT a.k AS ak, b.k AS bk
  %s EVERY PT6S`},
		{"agg", `MATCH (a:P)-[r:F]->(b:P)
  WITHIN PT20S
  EMIT a.k AS k, count(*) AS n, sum(r.v) AS tv, min(b.k) AS mn, max(b.k) AS mx
  %s EVERY PT7S`},
	}
	ops := []struct{ kw, short string }{
		{"SNAPSHOT", "snap"}, {"ON ENTERING", "ent"}, {"ON EXITING", "exi"},
	}

	run := func(opts ...engine.Option) (map[string]*engine.Collector, map[string]*engine.Query) {
		e := engine.New(opts...)
		cols := map[string]*engine.Collector{}
		queries := map[string]*engine.Query{}
		for _, b := range bodies {
			for _, op := range ops {
				name := b.name + "_" + op.short
				src := fmt.Sprintf("REGISTER QUERY %s STARTING AT 2026-07-06T10:00:00\n{\n  %s\n}",
					name, fmt.Sprintf(b.body, op.kw))
				col := &engine.Collector{}
				q, err := e.RegisterSource(src, col.Sink())
				if err != nil {
					t.Fatalf("register %s: %v", name, err)
				}
				cols[name] = col
				queries[name] = q
			}
		}
		for _, ev := range events {
			if err := e.Push(ev.g, ev.at); err != nil {
				t.Fatal(err)
			}
			if err := e.AdvanceTo(ev.at); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.AdvanceTo(events[len(events)-1].at.Add(25 * time.Second)); err != nil {
			t.Fatal(err)
		}
		return cols, queries
	}

	full, _ := run()
	delta, dq := run(engine.WithDeltaEval(true))
	for name, fc := range full {
		dc := delta[name]
		if len(fc.Results) != len(dc.Results) {
			t.Fatalf("%s: %d full results vs %d delta results", name, len(fc.Results), len(dc.Results))
		}
		for i := range fc.Results {
			fr, dr := fc.Results[i], dc.Results[i]
			if !fr.At.Equal(dr.At) {
				t.Fatalf("%s result %d: instants %s vs %s", name, i, fr.At, dr.At)
			}
			if !sameChaosBag(fr.Table, dr.Table) {
				t.Fatalf("%s at %s:\nfull:  %v\ndelta: %v", name, fr.At, fr.Table.Rows, dr.Table.Rows)
			}
		}
		st := dq[name].Stats()
		// High-churn instants may be answered by a bypass round (the
		// churn-ratio guard); every instant must still come off the
		// delta path, with no fallback.
		if st.DeltaFallbacks != 0 || st.DeltaApplied == 0 || st.DeltaApplied+st.DeltaBypasses != st.Evaluations {
			t.Fatalf("%s: delta applied %d + bypassed %d of %d evaluations, fallbacks %d",
				name, st.DeltaApplied, st.DeltaBypasses, st.Evaluations, st.DeltaFallbacks)
		}
	}
}

// chaosDeltaEvent mirrors the engine package's delta-test generator: a
// 5-node id space with per-inclusion label and property presence (fixed
// values per id, so live overlaps never conflict) and relationship ids
// mostly derived from the (source, target, v) triple for heavy overlap.
func chaosDeltaEvent(r *rand.Rand, i int) *pg.Graph {
	g := pg.New()
	person := func(id int64) {
		labels := []string{"P"}
		if r.Intn(3) == 0 {
			labels = append(labels, "V")
		}
		props := map[string]value.Value{"k": value.NewInt(id % 3)}
		if r.Intn(2) == 0 {
			props["w"] = value.NewInt(id * 10)
		}
		g.AddNode(&value.Node{ID: id, Labels: labels, Props: props})
	}
	n := 1 + r.Intn(3)
	for j := 0; j < n; j++ {
		sid := int64(1 + r.Intn(5))
		tid := int64(1 + r.Intn(5))
		person(sid)
		person(tid)
		v := int64(r.Intn(3))
		relID := int64(1000 + sid*100 + tid*10 + v)
		if r.Intn(4) == 0 {
			relID = int64(100000 + i*10 + j)
		}
		_ = g.AddRel(&value.Relationship{ID: relID, StartID: sid, EndID: tid, Type: "F",
			Props: map[string]value.Value{"v": value.NewInt(v)}})
	}
	return g
}

func sameChaosBag(a, b *eval.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	ka := make([]string, a.Len())
	kb := make([]string, b.Len())
	for i := range a.Rows {
		ka[i] = a.RowKey(i)
	}
	for i := range b.Rows {
		kb[i] = b.RowKey(i)
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
