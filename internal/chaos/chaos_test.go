package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestChaosPrefixConsistency runs the differential oracle over a fixed
// seed matrix (default 50; override with CHAOS_SEEDS / shift with
// CHAOS_SEED_OFFSET for CI sharding). Every seed's faulty run must be
// explainable: delivered results identical to the fault-free replay,
// every gap accounted by a counter. On failure the report is written
// to $CHAOS_ARTIFACT_DIR for upload, so the seed can be replayed
// locally.
func TestChaosPrefixConsistency(t *testing.T) {
	seeds, offset := 50, 0
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seeds = n
		}
	}
	if s := os.Getenv("CHAOS_SEED_OFFSET"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			offset = n
		}
	}
	var totals struct {
		deadlettered, dropped, duplicates, shed, checkpoints int64
	}
	for i := 0; i < seeds; i++ {
		seed := int64(offset + i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rep, err := Run(NewPlan(seed))
			if err == nil {
				err = rep.Verify()
			}
			if err != nil {
				writeArtifact(t, seed, rep, err)
				t.Fatal(err)
			}
			totals.deadlettered += rep.Deadlettered
			totals.dropped += rep.Dropped
			totals.duplicates += rep.Duplicates
			totals.shed += rep.Shed
			if rep.Plan.CheckpointAt > 0 {
				totals.checkpoints++
			}
		})
	}
	if t.Failed() || offset != 0 || seeds < 50 {
		return
	}
	// The default matrix must actually exercise every fault class — a
	// harness that silently stops injecting faults would pass the
	// oracle vacuously.
	if totals.deadlettered == 0 {
		t.Error("no seed dead-lettered a record; poison/reorder faults not firing")
	}
	if totals.dropped == 0 {
		t.Error("no seed evicted a record; bounded-queue fault not firing")
	}
	if totals.duplicates == 0 {
		t.Error("no seed deduplicated a redelivery; rewind fault not firing")
	}
	if totals.shed == 0 {
		t.Error("no seed shed an instant; deadline/stall fault not firing")
	}
	if totals.checkpoints == 0 {
		t.Error("no seed exercised checkpoint/restore")
	}
}

// TestChaosRunDeterminism: the same seed must produce a bit-identical
// report on re-execution — the property that makes a failing seed
// replayable at all.
func TestChaosRunDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		a, err := Run(NewPlan(seed))
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		b, err := Run(NewPlan(seed))
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Errorf("seed %d: two runs produced different reports", seed)
		}
	}
}

// writeArtifact dumps a failing seed's full report where CI can pick
// it up (no-op unless CHAOS_ARTIFACT_DIR is set).
func writeArtifact(t *testing.T, seed int64, rep *Report, runErr error) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos: artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.json", seed))
	data, err := json.MarshalIndent(map[string]any{
		"seed":   seed,
		"error":  runErr.Error(),
		"report": rep,
	}, "", "  ")
	if err != nil {
		t.Logf("chaos: marshal artifact: %v", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("chaos: write artifact: %v", err)
		return
	}
	t.Logf("chaos: failing-seed artifact written to %s", path)
}
