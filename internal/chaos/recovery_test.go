package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"seraph/internal/wal"
)

// TestRecoveryKillPoints pins one deterministic plan per kill point,
// so each point is exercised on every run regardless of how the seeded
// matrix happens to land.
func TestRecoveryKillPoints(t *testing.T) {
	for _, kp := range []KillPoint{KillNone, KillAfterAppend, KillMidCheckpoint, KillMidRecovery} {
		t.Run(kp.String(), func(t *testing.T) {
			plan := RecoveryPlan{
				Seed:            1,
				Events:          48,
				CheckpointEvery: 5,
				SegmentBytes:    256,
				PollEvery:       2,
				BatchSize:       3,
				Kill:            kp,
				KillAt:          29,
				OnEntering:      true,
			}
			if kp == KillAfterAppend {
				plan.Fsync = wal.FsyncNever
				plan.LoseTail = 48
			}
			rep, err := RunRecovery(t.TempDir(), plan)
			if err == nil {
				err = rep.Verify()
			}
			if err != nil {
				t.Fatalf("%+v\n%v", rep.Plan, err)
			}
			switch kp {
			case KillNone:
				// A graceful close keeps every acknowledged record; the
				// only work recovery does is replay past the checkpoint.
				if rep.Reproduced != 0 {
					t.Errorf("graceful close lost %d acknowledged records", rep.Reproduced)
				}
				if !rep.Recovered {
					t.Error("no checkpoint found after a full run")
				}
			case KillAfterAppend:
				// The unsynced tail must actually have been eaten, or the
				// kill point verified nothing.
				if rep.Reproduced == 0 {
					t.Error("tail truncation lost no records; loss window not exercised")
				}
			case KillMidCheckpoint, KillMidRecovery:
				if rep.Produced != int64(plan.KillAt+1) {
					t.Errorf("produced %d before crash, want %d", rep.Produced, plan.KillAt+1)
				}
			}
			if len(rep.Post) == 0 {
				t.Error("recovered run emitted nothing")
			}
		})
	}
}

// TestRecoveryChaos runs the crash-recovery differential oracle over a
// seeded matrix (default 50; RECOVERY_SEEDS / RECOVERY_SEED_OFFSET
// shard it in CI). Every seed's recovered run must be bag-identical to
// the uncrashed oracle, with every divergence explained by a counter.
func TestRecoveryChaos(t *testing.T) {
	seeds, offset := 50, 0
	if s := os.Getenv("RECOVERY_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seeds = n
		}
	}
	if s := os.Getenv("RECOVERY_SEED_OFFSET"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			offset = n
		}
	}
	var totals struct {
		kills      [4]int
		recovered  int
		reproduced int64
		reEmitted  int64
	}
	for i := 0; i < seeds; i++ {
		seed := int64(offset + i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			plan := NewRecoveryPlan(seed)
			rep, err := RunRecovery(t.TempDir(), plan)
			if err == nil {
				err = rep.Verify()
			}
			if err != nil {
				writeRecoveryArtifact(t, seed, rep, err)
				t.Fatal(err)
			}
			totals.kills[plan.Kill]++
			if rep.Recovered {
				totals.recovered++
			}
			totals.reproduced += rep.Reproduced
			totals.reEmitted += rep.ReEmitted
		})
	}
	if t.Failed() || offset != 0 || seeds < 50 {
		return
	}
	// The default matrix must exercise every kill point and actually
	// recover from checkpoints — a harness that always cold-starts
	// would pass the oracle vacuously.
	for kp, n := range totals.kills {
		if n == 0 {
			t.Errorf("no seed exercised kill point %s", KillPoint(kp))
		}
	}
	if totals.recovered == 0 {
		t.Error("no seed recovered from a checkpoint")
	}
	if totals.reproduced == 0 {
		t.Error("no seed lost and re-produced an acknowledged record; loss window not exercised")
	}
	if totals.reEmitted == 0 {
		t.Error("no seed re-emitted an instant across a crash; recovery rewind not exercised")
	}
}

// TestRecoveryRunDeterminism: the same seed and directory layout must
// produce an identical report, so a failing seed can be replayed.
func TestRecoveryRunDeterminism(t *testing.T) {
	for _, seed := range []int64{2, 9, 23} {
		plan := NewRecoveryPlan(seed)
		a, err := RunRecovery(t.TempDir(), plan)
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("seed %d first verify: %v", seed, err)
		}
		b, err := RunRecovery(t.TempDir(), plan)
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		if err := b.Verify(); err != nil {
			t.Fatalf("seed %d second verify: %v", seed, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("seed %d: two runs produced different reports", seed)
		}
	}
}

// writeRecoveryArtifact mirrors writeArtifact for recovery seeds.
func writeRecoveryArtifact(t *testing.T, seed int64, rep *RecoveryReport, runErr error) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos: artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("recovery-seed-%d.json", seed))
	data, err := json.MarshalIndent(map[string]any{
		"seed":   seed,
		"error":  runErr.Error(),
		"report": rep,
	}, "", "  ")
	if err != nil {
		t.Logf("chaos: marshal artifact: %v", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("chaos: write artifact: %v", err)
		return
	}
	t.Logf("chaos: failing-seed artifact written to %s", path)
}
