package pipeline

import (
	"strings"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/queue"
	"seraph/internal/workload"
)

// TestRunPipeline drives the full Section 2 architecture with a
// concurrent producer: producer → broker → connector → engine → sink.
func TestRun(t *testing.T) {
	broker := queue.NewBroker()
	if err := broker.CreateTopic("rentals", 1); err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	col := &engine.Collector{}
	if _, err := eng.RegisterSource(workload.StudentTrickQuery, col.Sink()); err != nil {
		t.Fatal(err)
	}

	// Producer publishes Figure 1 with pauses, then closes the broker.
	go func() {
		for _, el := range workload.Figure1Stream() {
			data, err := ingest.Encode(el.Graph, el.Time)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := broker.Produce("rentals", "", data, el.Time); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		broker.Close()
	}()

	n, err := Run(broker, "rentals", eng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("events processed = %d", n)
	}
	if got := len(col.NonEmpty()); got != 2 {
		t.Errorf("non-empty results = %d, want 2 (Tables 5 and 6)", got)
	}
}

// figure1CSV is the Figure 1 stream in the rental CSV format.
const figure1CSV = `ts,vehicle,electric,station,user,kind,at,duration,extra_label
2022-10-14T14:45:00,5,true,1,1234,rentedAt,2022-10-14T14:40:00,,EBike
2022-10-14T15:00:00,5,true,2,1234,returnedAt,2022-10-14T14:55:00,15,EBike
2022-10-14T15:00:00,6,false,2,1234,rentedAt,2022-10-14T14:57:00,,
2022-10-14T15:00:00,8,false,2,5678,rentedAt,2022-10-14T14:58:00,,
2022-10-14T15:15:00,6,false,3,1234,returnedAt,2022-10-14T15:13:00,16,
2022-10-14T15:20:00,8,false,3,5678,returnedAt,2022-10-14T15:15:00,17,
2022-10-14T15:20:00,7,true,3,5678,rentedAt,2022-10-14T15:18:00,,EBike
2022-10-14T15:40:00,7,true,4,5678,returnedAt,2022-10-14T15:35:00,17,EBike
`

// TestCSVDrivesRunningExample replays the CSV-decoded Figure 1 stream
// through the Listing 5 query and reproduces the Tables 5/6 outputs.
func TestCSVDrivesRunningExample(t *testing.T) {
	elems, err := ingest.ReadCSV(strings.NewReader(figure1CSV), ingest.RentalCSVMapping())
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New()
	col := &engine.Collector{}
	if _, err := e.RegisterSource(workload.StudentTrickQuery, col.Sink()); err != nil {
		t.Fatal(err)
	}
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			t.Fatal(err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := col.NonEmpty()
	if len(nonEmpty) != 2 {
		t.Fatalf("non-empty emissions = %d, want 2", len(nonEmpty))
	}
	if u := nonEmpty[0].Table.Get(0, "r.user_id").Int(); u != 1234 {
		t.Errorf("first match user = %d", u)
	}
	if u := nonEmpty[1].Table.Get(0, "r.user_id").Int(); u != 5678 {
		t.Errorf("second match user = %d", u)
	}
}
