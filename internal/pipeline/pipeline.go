// Package pipeline wires the full Section 2 architecture together:
// event producers publish to the embedded broker, a connector decodes
// events into property graphs, and the continuous engine evaluates the
// registered Seraph queries as the virtual clock advances.
package pipeline

import (
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/queue"
)

// Run consumes events from the broker topic, pushes each decoded graph
// into the engine and advances the engine's virtual clock to the
// event's timestamp — continuously, until the broker is closed. It
// returns the number of events processed.
//
// Producers terminate the pipeline by closing the broker; the pipeline
// drains everything produced before the close.
func Run(b *queue.Broker, topic string, e *engine.Engine) (int, error) {
	conn, err := ingest.NewConnector(b, topic, func(g *pg.Graph, ts time.Time) error {
		if err := e.Push(g, ts); err != nil {
			return err
		}
		return e.AdvanceTo(ts)
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for {
		n, err := conn.PollBlocking(1024)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}
