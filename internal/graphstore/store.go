// Package graphstore provides an indexed, mutable view over a property
// graph: adjacency lists per node, a label index, and id allocation for
// updating clauses. The Cypher evaluator matches patterns against a
// Store; the continuous engine builds one Store per snapshot graph.
package graphstore

import (
	"sort"
	"sync/atomic"

	"seraph/internal/pg"
	"seraph/internal/value"
)

// Store is an indexed property graph. It is not safe for concurrent
// mutation; concurrent reads are safe once construction is complete.
type Store struct {
	graph *pg.Graph
	// out/in map node id → relationships sorted by id.
	out   map[int64][]*value.Relationship
	in    map[int64][]*value.Relationship
	label map[string][]*value.Node

	nextNodeID atomic.Int64
	nextRelID  atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return FromGraph(pg.New())
}

// FromGraph builds an indexed store over g. The store takes ownership
// of g; callers must not mutate g afterwards.
func FromGraph(g *pg.Graph) *Store {
	s := &Store{
		graph: g,
		out:   make(map[int64][]*value.Relationship),
		in:    make(map[int64][]*value.Relationship),
		label: make(map[string][]*value.Node),
	}
	var maxN, maxR int64
	g.EachNode(func(n *value.Node) {
		s.indexNode(n)
		if n.ID > maxN {
			maxN = n.ID
		}
	})
	g.EachRel(func(r *value.Relationship) {
		s.indexRel(r)
		if r.ID > maxR {
			maxR = r.ID
		}
	})
	for _, rels := range s.out {
		sortRels(rels)
	}
	for _, rels := range s.in {
		sortRels(rels)
	}
	for _, ns := range s.label {
		sortNodes(ns)
	}
	s.nextNodeID.Store(maxN + 1)
	s.nextRelID.Store(maxR + 1)
	return s
}

func sortRels(rels []*value.Relationship) {
	sort.Slice(rels, func(i, j int) bool { return rels[i].ID < rels[j].ID })
}

func sortNodes(ns []*value.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

func (s *Store) indexNode(n *value.Node) {
	for _, l := range n.Labels {
		s.label[l] = append(s.label[l], n)
	}
}

func (s *Store) indexRel(r *value.Relationship) {
	s.out[r.StartID] = append(s.out[r.StartID], r)
	s.in[r.EndID] = append(s.in[r.EndID], r)
}

// Graph returns the underlying property graph.
func (s *Store) Graph() *pg.Graph { return s.graph }

// Node returns the node with id, or nil.
func (s *Store) Node(id int64) *value.Node { return s.graph.Node(id) }

// Rel returns the relationship with id, or nil.
func (s *Store) Rel(id int64) *value.Relationship { return s.graph.Rel(id) }

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return s.graph.NumNodes() }

// NumRels returns the relationship count.
func (s *Store) NumRels() int { return s.graph.NumRels() }

// AllNodes returns all nodes sorted by id.
func (s *Store) AllNodes() []*value.Node { return s.graph.Nodes() }

// AllRels returns all relationships sorted by id.
func (s *Store) AllRels() []*value.Relationship { return s.graph.Rels() }

// NodesByLabel returns the nodes carrying label l, sorted by id.
// The returned slice must not be mutated.
func (s *Store) NodesByLabel(l string) []*value.Node { return s.label[l] }

// Outgoing returns relationships with src = id, sorted by id.
func (s *Store) Outgoing(id int64) []*value.Relationship { return s.out[id] }

// Incoming returns relationships with trg = id, sorted by id.
func (s *Store) Incoming(id int64) []*value.Relationship { return s.in[id] }

// Degree returns the total degree of node id.
func (s *Store) Degree(id int64) int { return len(s.out[id]) + len(s.in[id]) }

// CreateNode allocates a fresh node with the given labels and
// properties and inserts it.
func (s *Store) CreateNode(labels []string, props map[string]value.Value) *value.Node {
	if props == nil {
		props = map[string]value.Value{}
	}
	n := &value.Node{ID: s.nextNodeID.Add(1) - 1, Labels: labels, Props: props}
	s.graph.AddNode(n)
	s.indexNode(n)
	return n
}

// AddNode inserts a node with a caller-chosen id (used by ingestion
// under the unique name assumption). It replaces nothing: callers must
// check existence first.
func (s *Store) AddNode(n *value.Node) {
	s.graph.AddNode(n)
	s.indexNode(n)
	if n.ID >= s.nextNodeID.Load() {
		s.nextNodeID.Store(n.ID + 1)
	}
}

// CreateRel allocates a fresh relationship and inserts it. Both
// endpoints must exist.
func (s *Store) CreateRel(startID, endID int64, typ string, props map[string]value.Value) (*value.Relationship, error) {
	if props == nil {
		props = map[string]value.Value{}
	}
	r := &value.Relationship{
		ID:      s.nextRelID.Add(1) - 1,
		StartID: startID,
		EndID:   endID,
		Type:    typ,
		Props:   props,
	}
	if err := s.graph.AddRel(r); err != nil {
		return nil, err
	}
	s.indexRel(r)
	return r, nil
}

// AddRel inserts a relationship with a caller-chosen id.
func (s *Store) AddRel(r *value.Relationship) error {
	if err := s.graph.AddRel(r); err != nil {
		return err
	}
	s.indexRel(r)
	if r.ID >= s.nextRelID.Load() {
		s.nextRelID.Store(r.ID + 1)
	}
	return nil
}

// AddLabel adds label l to node n, maintaining the label index.
func (s *Store) AddLabel(n *value.Node, l string) {
	if n.HasLabel(l) {
		return
	}
	n.Labels = append(n.Labels, l)
	s.label[l] = append(s.label[l], n)
	sortNodes(s.label[l])
}

// RemoveLabel removes label l from node n.
func (s *Store) RemoveLabel(n *value.Node, l string) {
	for i, x := range n.Labels {
		if x == l {
			n.Labels = append(n.Labels[:i], n.Labels[i+1:]...)
			break
		}
	}
	ns := s.label[l]
	for i, x := range ns {
		if x.ID == n.ID {
			s.label[l] = append(ns[:i], ns[i+1:]...)
			break
		}
	}
}

// DeleteRel removes relationship r.
func (s *Store) DeleteRel(r *value.Relationship) {
	s.out[r.StartID] = removeRel(s.out[r.StartID], r.ID)
	s.in[r.EndID] = removeRel(s.in[r.EndID], r.ID)
	s.graph.RemoveRel(r.ID)
}

// DeleteNode removes node n. If detach is true its relationships are
// removed first; otherwise deleting a node with relationships is an
// error, matching Cypher's DELETE vs DETACH DELETE.
func (s *Store) DeleteNode(n *value.Node, detach bool) error {
	rels := append(append([]*value.Relationship(nil), s.out[n.ID]...), s.in[n.ID]...)
	if len(rels) > 0 && !detach {
		return &NotDetachedError{NodeID: n.ID, Rels: len(rels)}
	}
	for _, r := range rels {
		s.DeleteRel(r)
	}
	for _, l := range n.Labels {
		ns := s.label[l]
		for i, x := range ns {
			if x.ID == n.ID {
				s.label[l] = append(ns[:i], ns[i+1:]...)
				break
			}
		}
	}
	s.graph.RemoveNode(n.ID)
	return nil
}

// NotDetachedError is returned when DELETE targets a node that still
// has relationships and DETACH was not specified.
type NotDetachedError struct {
	NodeID int64
	Rels   int
}

func (e *NotDetachedError) Error() string {
	return "graphstore: cannot delete node with relationships (use DETACH DELETE)"
}

func removeRel(rels []*value.Relationship, id int64) []*value.Relationship {
	for i, r := range rels {
		if r.ID == id {
			return append(rels[:i], rels[i+1:]...)
		}
	}
	return rels
}
