// Package graphstore provides an indexed, mutable view over a property
// graph: adjacency lists per node (partitioned by relationship type), a
// label index, lazily-built property-value indexes, and id allocation
// for updating clauses. The Cypher evaluator matches patterns against a
// Store; the continuous engine builds one Store per snapshot graph (or
// maintains a long-lived rolling Store in incremental mode, which is
// why every mutator below also maintains the index structures).
package graphstore

import (
	"sort"
	"sync"
	"sync/atomic"

	"seraph/internal/pg"
	"seraph/internal/symtab"
	"seraph/internal/value"
)

// adjKey addresses one node's adjacency list for one relationship
// type. The type is stored as its interned symbol ID, so the map hash
// is over two ints instead of an int and a string.
type adjKey struct {
	id  int64
	typ symtab.ID
}

// Store is an indexed property graph. It is not safe for concurrent
// mutation; concurrent reads are safe once construction is complete
// (the lazily-built property indexes synchronize internally).
type Store struct {
	graph *pg.Graph
	// out/in map node id → relationships sorted by id.
	out map[int64][]*value.Relationship
	in  map[int64][]*value.Relationship
	// label and relType are keyed by interned symbol ID (symtab): the
	// matcher resolves pattern labels/types to IDs once per plan and
	// every per-element lookup is an int-map access. String-keyed
	// wrappers (NodesByLabel, RelTypeCount) Lookup on entry; a string
	// never interned maps to symtab.None, which indexes nothing —
	// exactly the semantics of an unknown label.
	label map[symtab.ID][]*value.Node

	// outT/inT partition the adjacency lists by relationship type, so a
	// typed expansion touches only matching edges. Partitions are built
	// lazily per node on first typed access (outTDone/inTDone record
	// which nodes are partitioned); bulk store construction never pays
	// for them, and mutators maintain only partitions that exist.
	outT     map[adjKey][]*value.Relationship
	inT      map[adjKey][]*value.Relationship
	outTDone map[int64]bool
	inTDone  map[int64]bool

	// relType counts relationships per type (planner selectivity
	// statistics), keyed by interned type ID.
	relType map[symtab.ID]int

	// idxMu guards propIdx and the typed-adjacency partitions: both are
	// built lazily from the read path, which must stay safe under
	// concurrent readers.
	idxMu   sync.Mutex
	propIdx map[propIdxKey]*propIndex

	nextNodeID atomic.Int64
	nextRelID  atomic.Int64

	// delta, when non-nil, records entity-level changes for the engine's
	// delta-driven evaluation mode (see delta.go).
	delta *deltaRecorder
}

// New returns an empty store.
func New() *Store {
	return FromGraph(pg.New())
}

// FromGraph builds an indexed store over g. The store takes ownership
// of g; callers must not mutate g afterwards.
func FromGraph(g *pg.Graph) *Store {
	s := &Store{
		graph:    g,
		out:      make(map[int64][]*value.Relationship),
		in:       make(map[int64][]*value.Relationship),
		label:    make(map[symtab.ID][]*value.Node),
		outT:     make(map[adjKey][]*value.Relationship),
		inT:      make(map[adjKey][]*value.Relationship),
		outTDone: make(map[int64]bool),
		inTDone:  make(map[int64]bool),
		relType:  make(map[symtab.ID]int),
		propIdx:  make(map[propIdxKey]*propIndex),
	}
	var maxN, maxR int64
	g.EachNode(func(n *value.Node) {
		s.indexNode(n)
		if n.ID > maxN {
			maxN = n.ID
		}
	})
	g.EachRel(func(r *value.Relationship) {
		s.indexRel(r)
		if r.ID > maxR {
			maxR = r.ID
		}
	})
	for _, rels := range s.out {
		sortRels(rels)
	}
	for _, rels := range s.in {
		sortRels(rels)
	}
	for _, ns := range s.label {
		sortNodes(ns)
	}
	s.nextNodeID.Store(maxN + 1)
	s.nextRelID.Store(maxR + 1)
	return s
}

func sortRels(rels []*value.Relationship) {
	sort.Slice(rels, func(i, j int) bool { return rels[i].ID < rels[j].ID })
}

func sortNodes(ns []*value.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// insertNodeSorted places n into the id-sorted slice ns. Stream ids are
// usually monotonic, so the common case is an O(1) append; a full
// re-sort here would make every label gained by an entering node cost
// O(label bucket), which dominates delta-driven evaluation profiles.
func insertNodeSorted(ns []*value.Node, n *value.Node) []*value.Node {
	i := sort.Search(len(ns), func(i int) bool { return ns[i].ID >= n.ID })
	ns = append(ns, nil)
	copy(ns[i+1:], ns[i:])
	ns[i] = n
	return ns
}

// removeNodeSorted deletes node id from the id-sorted slice ns. Window
// eviction retires the oldest ids first, so the common case is popping
// the front, which re-slices without copying the tail (the slot is
// nilled so the node is not retained by the shared backing array).
func removeNodeSorted(ns []*value.Node, id int64) []*value.Node {
	i := sort.Search(len(ns), func(i int) bool { return ns[i].ID >= id })
	if i >= len(ns) || ns[i].ID != id {
		return ns
	}
	if i == 0 {
		ns[0] = nil
		return ns[1:]
	}
	return append(ns[:i], ns[i+1:]...)
}

func (s *Store) indexNode(n *value.Node) {
	for _, l := range n.Labels {
		s.label[symtab.Intern(l)] = append(s.label[symtab.Intern(l)], n)
	}
}

func (s *Store) indexRel(r *value.Relationship) {
	s.out[r.StartID] = append(s.out[r.StartID], r)
	s.in[r.EndID] = append(s.in[r.EndID], r)
	typ := symtab.Intern(r.Type)
	if s.outTDone[r.StartID] {
		s.outT[adjKey{r.StartID, typ}] = append(s.outT[adjKey{r.StartID, typ}], r)
	}
	if s.inTDone[r.EndID] {
		s.inT[adjKey{r.EndID, typ}] = append(s.inT[adjKey{r.EndID, typ}], r)
	}
	s.relType[typ]++
}

// Graph returns the underlying property graph.
func (s *Store) Graph() *pg.Graph { return s.graph }

// Node returns the node with id, or nil.
func (s *Store) Node(id int64) *value.Node { return s.graph.Node(id) }

// Rel returns the relationship with id, or nil.
func (s *Store) Rel(id int64) *value.Relationship { return s.graph.Rel(id) }

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return s.graph.NumNodes() }

// NumRels returns the relationship count.
func (s *Store) NumRels() int { return s.graph.NumRels() }

// AllNodes returns all nodes sorted by id.
func (s *Store) AllNodes() []*value.Node { return s.graph.Nodes() }

// AllRels returns all relationships sorted by id.
func (s *Store) AllRels() []*value.Relationship { return s.graph.Rels() }

// NodesByLabel returns the nodes carrying label l, sorted by id.
// The returned slice must not be mutated.
func (s *Store) NodesByLabel(l string) []*value.Node { return s.label[symtab.Lookup(l)] }

// NodesByLabelID is NodesByLabel addressed by interned label ID — the
// matcher's hot path, one int-map access.
func (s *Store) NodesByLabelID(id symtab.ID) []*value.Node { return s.label[id] }

// LabelCount returns the number of nodes carrying label l without
// materializing the node list (planner statistics).
func (s *Store) LabelCount(l string) int { return len(s.label[symtab.Lookup(l)]) }

// LabelCountID is LabelCount addressed by interned label ID.
func (s *Store) LabelCountID(id symtab.ID) int { return len(s.label[id]) }

// RelTypeCount returns how many relationships carry one of the given
// types; with no types it returns the total relationship count.
func (s *Store) RelTypeCount(types ...string) int {
	if len(types) == 0 {
		return s.graph.NumRels()
	}
	n := 0
	for _, t := range types {
		n += s.relType[symtab.Lookup(t)]
	}
	return n
}

// RelTypeCountIDs is RelTypeCount addressed by interned type IDs.
func (s *Store) RelTypeCountIDs(ids []symtab.ID) int {
	if len(ids) == 0 {
		return s.graph.NumRels()
	}
	n := 0
	for _, id := range ids {
		n += s.relType[id]
	}
	return n
}

// Outgoing returns relationships with src = id. With types given, only
// relationships of those types are returned, served from the
// type-partitioned adjacency index (built for this node on first typed
// access). Results of a freshly built store are sorted by id; the
// returned slice must not be mutated.
func (s *Store) Outgoing(id int64, types ...string) []*value.Relationship {
	if len(types) == 0 {
		return s.out[id]
	}
	return s.OutgoingIDs(id, lookupIDs(types))
}

// OutgoingIDs is Outgoing addressed by interned type IDs (nil means
// all types).
func (s *Store) OutgoingIDs(id int64, types []symtab.ID) []*value.Relationship {
	if len(types) == 0 {
		return s.out[id]
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	partitionAdjLocked(s.out, s.outT, s.outTDone, id)
	return typedLocked(s.outT, id, types)
}

// Incoming returns relationships with trg = id, optionally restricted
// to the given types (see Outgoing).
func (s *Store) Incoming(id int64, types ...string) []*value.Relationship {
	if len(types) == 0 {
		return s.in[id]
	}
	return s.IncomingIDs(id, lookupIDs(types))
}

// IncomingIDs is Incoming addressed by interned type IDs (nil means
// all types).
func (s *Store) IncomingIDs(id int64, types []symtab.ID) []*value.Relationship {
	if len(types) == 0 {
		return s.in[id]
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	partitionAdjLocked(s.in, s.inT, s.inTDone, id)
	return typedLocked(s.inT, id, types)
}

// lookupIDs resolves type strings to interned IDs for the string-keyed
// wrapper APIs. Unseen strings resolve to None, which matches nothing.
func lookupIDs(types []string) []symtab.ID {
	ids := make([]symtab.ID, len(types))
	for i, t := range types {
		ids[i] = symtab.Lookup(t)
	}
	return ids
}

// partitionAdjLocked splits all[id] into per-type lists in byType. The
// source list is id-sorted, so each partition stays sorted. Callers
// hold idxMu: partitioning happens on the read path and must be safe
// under concurrent readers.
func partitionAdjLocked(all map[int64][]*value.Relationship, byType map[adjKey][]*value.Relationship, done map[int64]bool, id int64) {
	if done[id] {
		return
	}
	for _, r := range all[id] {
		k := adjKey{id, symtab.Intern(r.Type)}
		byType[k] = append(byType[k], r)
	}
	done[id] = true
}

func typedLocked(byType map[adjKey][]*value.Relationship, id int64, types []symtab.ID) []*value.Relationship {
	if len(types) == 1 {
		return byType[adjKey{id, types[0]}]
	}
	var merged []*value.Relationship
	for _, t := range types {
		merged = append(merged, byType[adjKey{id, t}]...)
	}
	sortRels(merged) // multi-type union re-sorts to the canonical id order
	return merged
}

// Degree returns the total degree of node id. With types given it
// counts only relationships of those types.
func (s *Store) Degree(id int64, types ...string) int {
	if len(types) == 0 {
		return len(s.out[id]) + len(s.in[id])
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	partitionAdjLocked(s.out, s.outT, s.outTDone, id)
	partitionAdjLocked(s.in, s.inT, s.inTDone, id)
	n := 0
	for _, t := range types {
		tid := symtab.Lookup(t)
		n += len(s.outT[adjKey{id, tid}]) + len(s.inT[adjKey{id, tid}])
	}
	return n
}

// CreateNode allocates a fresh node with the given labels and
// properties and inserts it.
func (s *Store) CreateNode(labels []string, props map[string]value.Value) *value.Node {
	if props == nil {
		props = map[string]value.Value{}
	}
	n := &value.Node{ID: s.nextNodeID.Add(1) - 1, Labels: labels, Props: props}
	s.graph.AddNode(n)
	s.indexNode(n)
	s.propIndexAddNode(n)
	s.noteNode(n.ID, deltaAdded)
	return n
}

// AddNode inserts a node with a caller-chosen id (used by ingestion
// under the unique name assumption). It replaces nothing: callers must
// check existence first.
func (s *Store) AddNode(n *value.Node) {
	s.graph.AddNode(n)
	for _, l := range n.Labels {
		id := symtab.Intern(l)
		s.label[id] = insertNodeSorted(s.label[id], n)
	}
	s.propIndexAddNode(n)
	s.noteNode(n.ID, deltaAdded)
	if n.ID >= s.nextNodeID.Load() {
		s.nextNodeID.Store(n.ID + 1)
	}
}

// CreateRel allocates a fresh relationship and inserts it. Both
// endpoints must exist.
func (s *Store) CreateRel(startID, endID int64, typ string, props map[string]value.Value) (*value.Relationship, error) {
	if props == nil {
		props = map[string]value.Value{}
	}
	r := &value.Relationship{
		ID:      s.nextRelID.Add(1) - 1,
		StartID: startID,
		EndID:   endID,
		Type:    typ,
		Props:   props,
	}
	if err := s.graph.AddRel(r); err != nil {
		return nil, err
	}
	s.indexRel(r)
	s.noteRel(r.ID, deltaAdded)
	return r, nil
}

// AddRel inserts a relationship with a caller-chosen id.
func (s *Store) AddRel(r *value.Relationship) error {
	if err := s.graph.AddRel(r); err != nil {
		return err
	}
	s.indexRel(r)
	s.noteRel(r.ID, deltaAdded)
	if r.ID >= s.nextRelID.Load() {
		s.nextRelID.Store(r.ID + 1)
	}
	return nil
}

// AddLabel adds label l to node n, maintaining the label and property
// indexes.
func (s *Store) AddLabel(n *value.Node, l string) {
	if n.HasLabel(l) {
		return
	}
	n.Labels = append(n.Labels, l)
	id := symtab.Intern(l)
	s.label[id] = insertNodeSorted(s.label[id], n)
	s.propIndexAddLabel(n, l)
	s.noteNode(n.ID, deltaUpdated)
}

// RemoveLabel removes label l from node n.
func (s *Store) RemoveLabel(n *value.Node, l string) {
	for i, x := range n.Labels {
		if x == l {
			n.Labels = append(n.Labels[:i], n.Labels[i+1:]...)
			break
		}
	}
	id := symtab.Lookup(l)
	s.label[id] = removeNodeSorted(s.label[id], n.ID)
	s.propIndexRemoveLabel(n, l)
	s.noteNode(n.ID, deltaUpdated)
}

// SetNodeProp sets property key on node n to v, maintaining the
// property indexes; a Null v removes the property. All node property
// mutations on a live store must go through here (or the index layer
// silently serves stale entries).
func (s *Store) SetNodeProp(n *value.Node, key string, v value.Value) {
	old, had := n.Props[key]
	if v.IsNull() {
		if !had {
			return
		}
		delete(n.Props, key)
	} else {
		if had && value.Equivalent(old, v) {
			return
		}
		n.Props[key] = v
	}
	if s.graph.Node(n.ID) == n {
		// Only a store member belongs in the indexes; a foreign node (a
		// value from another snapshot) just has its props mutated.
		s.propIndexSetProp(n, key, old, had, v)
		s.noteNode(n.ID, deltaUpdated)
	}
}

// SetRelProp sets property key on relationship r to v; a Null v removes
// the property. Relationship properties are not indexed, but routing
// mutations through the store keeps the API symmetric and leaves room
// for future relationship indexes.
func (s *Store) SetRelProp(r *value.Relationship, key string, v value.Value) {
	old, had := r.Props[key]
	if v.IsNull() {
		if !had {
			return
		}
		delete(r.Props, key)
	} else {
		if had && value.Equivalent(old, v) {
			return
		}
		r.Props[key] = v
	}
	if s.graph.Rel(r.ID) == r {
		s.noteRel(r.ID, deltaUpdated)
	}
}

// DeleteRel removes relationship r.
func (s *Store) DeleteRel(r *value.Relationship) {
	s.out[r.StartID] = removeRel(s.out[r.StartID], r.ID)
	s.in[r.EndID] = removeRel(s.in[r.EndID], r.ID)
	typ := symtab.Intern(r.Type)
	if s.outTDone[r.StartID] {
		outKey := adjKey{r.StartID, typ}
		if rels := removeRel(s.outT[outKey], r.ID); len(rels) > 0 {
			s.outT[outKey] = rels
		} else {
			delete(s.outT, outKey)
		}
	}
	if s.inTDone[r.EndID] {
		inKey := adjKey{r.EndID, typ}
		if rels := removeRel(s.inT[inKey], r.ID); len(rels) > 0 {
			s.inT[inKey] = rels
		} else {
			delete(s.inT, inKey)
		}
	}
	if s.relType[typ]--; s.relType[typ] <= 0 {
		delete(s.relType, typ)
	}
	s.graph.RemoveRel(r.ID)
	s.noteRel(r.ID, deltaRemoved)
}

// DeleteNode removes node n. If detach is true its relationships are
// removed first; otherwise deleting a node with relationships is an
// error, matching Cypher's DELETE vs DETACH DELETE.
func (s *Store) DeleteNode(n *value.Node, detach bool) error {
	rels := append(append([]*value.Relationship(nil), s.out[n.ID]...), s.in[n.ID]...)
	if len(rels) > 0 && !detach {
		return &NotDetachedError{NodeID: n.ID, Rels: len(rels)}
	}
	for _, r := range rels {
		s.DeleteRel(r)
	}
	for _, l := range n.Labels {
		id := symtab.Lookup(l)
		s.label[id] = removeNodeSorted(s.label[id], n.ID)
	}
	s.propIndexRemoveNode(n)
	s.graph.RemoveNode(n.ID)
	s.noteNode(n.ID, deltaRemoved)
	return nil
}

// NotDetachedError is returned when DELETE targets a node that still
// has relationships and DETACH was not specified.
type NotDetachedError struct {
	NodeID int64
	Rels   int
}

func (e *NotDetachedError) Error() string {
	return "graphstore: cannot delete node with relationships (use DETACH DELETE)"
}

func removeRel(rels []*value.Relationship, id int64) []*value.Relationship {
	for i, r := range rels {
		if r.ID == id {
			return append(rels[:i], rels[i+1:]...)
		}
	}
	return rels
}
