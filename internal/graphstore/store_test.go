package graphstore

import (
	"testing"

	"seraph/internal/pg"
	"seraph/internal/value"
)

func buildStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	a := s.CreateNode([]string{"A"}, map[string]value.Value{"name": value.NewString("a")})
	b := s.CreateNode([]string{"A", "B"}, nil)
	c := s.CreateNode([]string{"C"}, nil)
	if _, err := s.CreateRel(a.ID, b.ID, "R", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRel(b.ID, c.ID, "S", nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateAndIndex(t *testing.T) {
	s := buildStore(t)
	if s.NumNodes() != 3 || s.NumRels() != 2 {
		t.Fatalf("sizes %d/%d", s.NumNodes(), s.NumRels())
	}
	if n := len(s.NodesByLabel("A")); n != 2 {
		t.Errorf("label A count = %d", n)
	}
	if n := len(s.NodesByLabel("Missing")); n != 0 {
		t.Errorf("missing label count = %d", n)
	}
	a := s.NodesByLabel("A")[0]
	if len(s.Outgoing(a.ID)) != 1 || len(s.Incoming(a.ID)) != 0 {
		t.Error("adjacency of a")
	}
	b := s.NodesByLabel("B")[0]
	if s.Degree(b.ID) != 2 {
		t.Errorf("degree of b = %d", s.Degree(b.ID))
	}
}

func TestFromGraphIndexes(t *testing.T) {
	g := pg.New()
	g.AddNode(&value.Node{ID: 10, Labels: []string{"X"}, Props: map[string]value.Value{}})
	g.AddNode(&value.Node{ID: 20, Labels: []string{"X"}, Props: map[string]value.Value{}})
	if err := g.AddRel(&value.Relationship{ID: 7, StartID: 10, EndID: 20, Type: "T", Props: map[string]value.Value{}}); err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g)
	if len(s.NodesByLabel("X")) != 2 {
		t.Error("label index from graph")
	}
	if len(s.Outgoing(10)) != 1 || s.Outgoing(10)[0].ID != 7 {
		t.Error("out index from graph")
	}
	if len(s.Incoming(20)) != 1 {
		t.Error("in index from graph")
	}
	// Fresh ids must not collide with existing ones.
	n := s.CreateNode(nil, nil)
	if n.ID <= 20 {
		t.Errorf("fresh node id %d collides", n.ID)
	}
	r, err := s.CreateRel(10, 20, "U", nil)
	if err != nil || r.ID <= 7 {
		t.Errorf("fresh rel id %v %v", r, err)
	}
}

func TestCreateRelMissingEndpoint(t *testing.T) {
	s := New()
	n := s.CreateNode(nil, nil)
	if _, err := s.CreateRel(n.ID, 999, "T", nil); err == nil {
		t.Error("missing endpoint must fail")
	}
}

func TestLabelMutation(t *testing.T) {
	s := New()
	n := s.CreateNode([]string{"A"}, nil)
	s.AddLabel(n, "B")
	s.AddLabel(n, "B") // idempotent
	if len(n.Labels) != 2 || len(s.NodesByLabel("B")) != 1 {
		t.Errorf("labels after add: %v", n.Labels)
	}
	s.RemoveLabel(n, "A")
	if n.HasLabel("A") || len(s.NodesByLabel("A")) != 0 {
		t.Error("label removal")
	}
	s.RemoveLabel(n, "Missing") // no-op
}

func TestDelete(t *testing.T) {
	s := buildStore(t)
	b := s.NodesByLabel("B")[0]
	if err := s.DeleteNode(b, false); err == nil {
		t.Fatal("deleting connected node without detach must fail")
	}
	if err := s.DeleteNode(b, true); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 2 || s.NumRels() != 0 {
		t.Errorf("after detach delete: %d/%d", s.NumNodes(), s.NumRels())
	}
	if len(s.NodesByLabel("B")) != 0 {
		t.Error("label index not maintained on delete")
	}
	a := s.NodesByLabel("A")[0]
	if len(s.Outgoing(a.ID)) != 0 {
		t.Error("adjacency not maintained on delete")
	}
}

func TestDeleteRel(t *testing.T) {
	s := New()
	a := s.CreateNode(nil, nil)
	b := s.CreateNode(nil, nil)
	r, err := s.CreateRel(a.ID, b.ID, "T", nil)
	if err != nil {
		t.Fatal(err)
	}
	s.DeleteRel(r)
	if s.NumRels() != 0 || len(s.Outgoing(a.ID)) != 0 || len(s.Incoming(b.ID)) != 0 {
		t.Error("rel deletion")
	}
	// Node can now be deleted without detach.
	if err := s.DeleteNode(a, false); err != nil {
		t.Error(err)
	}
}

func TestAddNodeAddRelExplicitIDs(t *testing.T) {
	s := New()
	s.AddNode(&value.Node{ID: 100, Labels: []string{"L"}, Props: map[string]value.Value{}})
	s.AddNode(&value.Node{ID: 200, Props: map[string]value.Value{}})
	if err := s.AddRel(&value.Relationship{ID: 300, StartID: 100, EndID: 200, Type: "T", Props: map[string]value.Value{}}); err != nil {
		t.Fatal(err)
	}
	// Fresh allocations skip past explicit ids.
	if n := s.CreateNode(nil, nil); n.ID <= 200 {
		t.Errorf("fresh node id %d", n.ID)
	}
	if r, _ := s.CreateRel(100, 200, "U", nil); r.ID <= 300 {
		t.Errorf("fresh rel id %d", r.ID)
	}
}
