package graphstore

import "sort"

// Delta summarizes the entity-level changes applied to a Store between
// two drain points: which nodes and relationships entered, exited, or
// had their labels/properties updated in place. The engine's
// delta-driven evaluation mode uses it to invalidate exactly the
// matches that touch a changed element and to seed anchored searches
// for new matches.
//
// An id can appear in both Added and Removed lists: the entity left the
// window and re-entered within one span, so the store object identity
// (and possibly its properties) changed and any match referencing the
// old object is stale.
type Delta struct {
	AddedNodes, RemovedNodes, UpdatedNodes []int64
	AddedRels, RemovedRels, UpdatedRels    []int64
}

// Empty reports whether the delta records no changes.
func (d *Delta) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 && len(d.UpdatedNodes) == 0 &&
		len(d.AddedRels) == 0 && len(d.RemovedRels) == 0 && len(d.UpdatedRels) == 0
}

// Len returns the total number of recorded entity changes.
func (d *Delta) Len() int {
	return len(d.AddedNodes) + len(d.RemovedNodes) + len(d.UpdatedNodes) +
		len(d.AddedRels) + len(d.RemovedRels) + len(d.UpdatedRels)
}

// Per-entity change status within one recording span. The transitions
// fold intermediate states so the drained Delta is a net summary:
// add+update → add; add+remove → nothing (never visible to a reader);
// remove+add → both (object identity changed); update+remove → remove.
const (
	deltaAdded   uint8 = 1 << 0
	deltaRemoved uint8 = 1 << 1
	deltaUpdated uint8 = 1 << 2
)

type deltaRecorder struct {
	nodes map[int64]uint8
	rels  map[int64]uint8
}

// BeginDelta starts recording entity-level changes. Subsequent
// mutations accumulate until TakeDelta drains them. Recording costs one
// map update per mutated entity; stores that never call BeginDelta pay
// a single nil check per mutation.
func (s *Store) BeginDelta() {
	s.delta = &deltaRecorder{nodes: make(map[int64]uint8), rels: make(map[int64]uint8)}
}

// StopDelta stops recording and discards any accumulated changes (used
// when a query permanently falls back to full re-evaluation).
func (s *Store) StopDelta() { s.delta = nil }

// TakeDelta returns the changes recorded since the previous drain (or
// BeginDelta) and resets the recorder. It returns nil when recording is
// not enabled. The id lists are sorted for deterministic downstream
// processing.
func (s *Store) TakeDelta() *Delta {
	if s.delta == nil {
		return nil
	}
	d := &Delta{}
	for id, st := range s.delta.nodes {
		if st&deltaAdded != 0 {
			d.AddedNodes = append(d.AddedNodes, id)
		}
		if st&deltaRemoved != 0 {
			d.RemovedNodes = append(d.RemovedNodes, id)
		}
		if st&deltaUpdated != 0 {
			d.UpdatedNodes = append(d.UpdatedNodes, id)
		}
	}
	for id, st := range s.delta.rels {
		if st&deltaAdded != 0 {
			d.AddedRels = append(d.AddedRels, id)
		}
		if st&deltaRemoved != 0 {
			d.RemovedRels = append(d.RemovedRels, id)
		}
		if st&deltaUpdated != 0 {
			d.UpdatedRels = append(d.UpdatedRels, id)
		}
	}
	for _, ids := range [][]int64{d.AddedNodes, d.RemovedNodes, d.UpdatedNodes,
		d.AddedRels, d.RemovedRels, d.UpdatedRels} {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	s.delta.nodes = make(map[int64]uint8)
	s.delta.rels = make(map[int64]uint8)
	return d
}

func note(m map[int64]uint8, id int64, ev uint8) {
	st := m[id]
	switch ev {
	case deltaAdded:
		// remove→add keeps the removed bit: the object was replaced.
		st = (st & deltaRemoved) | deltaAdded
	case deltaRemoved:
		if st&deltaAdded != 0 && st&deltaRemoved == 0 {
			// Added and removed within one span: net no-op.
			delete(m, id)
			return
		}
		// An update before removal is subsumed by the removal.
		st = deltaRemoved
	case deltaUpdated:
		if st&deltaAdded != 0 {
			return // updates fold into the pending add
		}
		st |= deltaUpdated
	}
	m[id] = st
}

func (s *Store) noteNode(id int64, ev uint8) {
	if s.delta != nil {
		note(s.delta.nodes, id, ev)
	}
}

func (s *Store) noteRel(id int64, ev uint8) {
	if s.delta != nil {
		note(s.delta.rels, id, ev)
	}
}
