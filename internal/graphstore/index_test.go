package graphstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"seraph/internal/value"
)

func TestTypedAdjacency(t *testing.T) {
	s := New()
	a := s.CreateNode(nil, nil)
	b := s.CreateNode(nil, nil)
	c := s.CreateNode(nil, nil)
	mustRel := func(from, to int64, typ string) *value.Relationship {
		t.Helper()
		r, err := s.CreateRel(from, to, typ, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mustRel(a.ID, b.ID, "R")
	mustRel(a.ID, b.ID, "S")
	mustRel(a.ID, c.ID, "R")
	rs := mustRel(b.ID, c.ID, "S")

	if got := s.Outgoing(a.ID, "R"); len(got) != 2 {
		t.Errorf("Outgoing(a, R) = %d rels, want 2", len(got))
	}
	if got := s.Outgoing(a.ID, "S"); len(got) != 1 {
		t.Errorf("Outgoing(a, S) = %d rels, want 1", len(got))
	}
	if got := s.Outgoing(a.ID, "R", "S"); len(got) != 3 {
		t.Errorf("Outgoing(a, R, S) = %d rels, want 3", len(got))
	}
	if got := s.Outgoing(a.ID); len(got) != 3 {
		t.Errorf("Outgoing(a) = %d rels, want 3", len(got))
	}
	if got := s.Incoming(c.ID, "S"); len(got) != 1 || got[0].ID != rs.ID {
		t.Errorf("Incoming(c, S) = %v", got)
	}
	if got := s.Outgoing(a.ID, "Missing"); len(got) != 0 {
		t.Errorf("Outgoing(a, Missing) = %d rels, want 0", len(got))
	}
	if d := s.Degree(a.ID, "R"); d != 2 {
		t.Errorf("Degree(a, R) = %d, want 2", d)
	}
	if n := s.RelTypeCount("S"); n != 2 {
		t.Errorf("RelTypeCount(S) = %d, want 2", n)
	}
	if n := s.RelTypeCount(); n != s.NumRels() {
		t.Errorf("RelTypeCount() = %d, want %d", n, s.NumRels())
	}

	s.DeleteRel(rs)
	if got := s.Incoming(c.ID, "S"); len(got) != 0 {
		t.Errorf("Incoming(c, S) after delete = %d rels, want 0", len(got))
	}
	if n := s.RelTypeCount("S"); n != 1 {
		t.Errorf("RelTypeCount(S) after delete = %d, want 1", n)
	}
}

// typedScan is the reference for typed adjacency: filter the untyped
// list by type.
func typedScan(all []*value.Relationship, types ...string) []*value.Relationship {
	if len(types) == 0 {
		return all
	}
	var out []*value.Relationship
	for _, r := range all {
		for _, typ := range types {
			if r.Type == typ {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// freshPropScan is the reference for the property index: scan the label
// list and keep nodes whose property equals val.
func freshPropScan(s *Store, label, key string, val value.Value) []*value.Node {
	var out []*value.Node
	for _, n := range s.NodesByLabel(label) {
		if v, ok := n.Props[key]; ok && value.Key(v) == value.Key(val) {
			out = append(out, n)
		}
	}
	return out
}

func sameNodes(a, b []*value.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func TestNodesByLabelProp(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.CreateNode([]string{"User"}, map[string]value.Value{
			"bucket": value.NewInt(int64(i % 3)),
		})
	}
	s.CreateNode([]string{"Other"}, map[string]value.Value{"bucket": value.NewInt(0)})

	hit := s.NodesByLabelProp("User", "bucket", value.NewInt(0))
	if len(hit) != 4 {
		t.Fatalf("bucket=0 hit = %d nodes, want 4", len(hit))
	}
	for i := 1; i < len(hit); i++ {
		if hit[i-1].ID >= hit[i].ID {
			t.Fatal("index bucket not sorted by id")
		}
	}
	if s.PropIndexes() != 1 {
		t.Errorf("PropIndexes = %d, want 1", s.PropIndexes())
	}
	if got := s.NodesByLabelProp("User", "bucket", value.NewInt(99)); len(got) != 0 {
		t.Errorf("absent value hit = %d nodes", len(got))
	}
	if got := s.NodesByLabelProp("User", "bucket", value.Null); got != nil {
		t.Errorf("null value lookup = %v, want nil", got)
	}
	if n := s.PropIndexCount("User", "bucket", value.NewInt(1)); n != 3 {
		t.Errorf("PropIndexCount = %d, want 3", n)
	}
}

// TestPropIndexMaintenanceQuick drives a random mutation sequence
// through the store — node/label/property adds and removes interleaved
// with index lookups (so indexes exist mid-sequence) — and checks that
// every index-served lookup equals a fresh scan of the label list. This
// is the invariant the incremental maintenance hooks must preserve for
// the long-lived rolling store.
func TestPropIndexMaintenanceQuick(t *testing.T) {
	labels := []string{"A", "B"}
	keys := []string{"k", "p"}
	vals := []value.Value{value.NewInt(0), value.NewInt(1), value.NewString("x")}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		var nodes []*value.Node
		for step := 0; step < 200; step++ {
			switch op := r.Intn(7); {
			case op == 0 || len(nodes) == 0: // create
				props := map[string]value.Value{}
				if r.Intn(2) == 0 {
					props[keys[r.Intn(len(keys))]] = vals[r.Intn(len(vals))]
				}
				n := s.CreateNode([]string{labels[r.Intn(len(labels))]}, props)
				nodes = append(nodes, n)
			case op == 1: // delete
				i := r.Intn(len(nodes))
				if err := s.DeleteNode(nodes[i], true); err != nil {
					return false
				}
				nodes = append(nodes[:i], nodes[i+1:]...)
			case op == 2: // set / overwrite a property
				n := nodes[r.Intn(len(nodes))]
				s.SetNodeProp(n, keys[r.Intn(len(keys))], vals[r.Intn(len(vals))])
			case op == 3: // remove a property
				n := nodes[r.Intn(len(nodes))]
				s.SetNodeProp(n, keys[r.Intn(len(keys))], value.Null)
			case op == 4: // add a label
				s.AddLabel(nodes[r.Intn(len(nodes))], labels[r.Intn(len(labels))])
			case op == 5: // remove a label
				s.RemoveLabel(nodes[r.Intn(len(nodes))], labels[r.Intn(len(labels))])
			default: // lookup (forces index builds mid-sequence)
				l, k, v := labels[r.Intn(len(labels))], keys[r.Intn(len(keys))], vals[r.Intn(len(vals))]
				if !sameNodes(s.NodesByLabelProp(l, k, v), freshPropScan(s, l, k, v)) {
					return false
				}
			}
		}
		// Final check: every (label, key, value) combination.
		for _, l := range labels {
			for _, k := range keys {
				for _, v := range vals {
					if !sameNodes(s.NodesByLabelProp(l, k, v), freshPropScan(s, l, k, v)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTypedAdjacencyQuick checks that the type-partitioned adjacency
// lists agree with filtering the untyped lists, across random graph
// mutation sequences including relationship deletion.
func TestTypedAdjacencyQuick(t *testing.T) {
	types := []string{"R", "S", "T"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		var nodes []*value.Node
		var rels []*value.Relationship
		for i := 0; i < 8; i++ {
			nodes = append(nodes, s.CreateNode(nil, nil))
		}
		for step := 0; step < 150; step++ {
			if r.Intn(4) != 0 || len(rels) == 0 {
				from := nodes[r.Intn(len(nodes))]
				to := nodes[r.Intn(len(nodes))]
				rel, err := s.CreateRel(from.ID, to.ID, types[r.Intn(len(types))], nil)
				if err != nil {
					return false
				}
				rels = append(rels, rel)
			} else {
				i := r.Intn(len(rels))
				s.DeleteRel(rels[i])
				rels = append(rels[:i], rels[i+1:]...)
			}
		}
		for _, n := range nodes {
			for _, typ := range types {
				if !sameRels(s.Outgoing(n.ID, typ), typedScan(s.Outgoing(n.ID), typ)) {
					return false
				}
				if !sameRels(s.Incoming(n.ID, typ), typedScan(s.Incoming(n.ID), typ)) {
					return false
				}
			}
			multi := types[:2]
			if !sameRels(s.Outgoing(n.ID, multi...), typedScan(s.Outgoing(n.ID), multi...)) {
				return false
			}
			if s.Degree(n.ID) != len(s.Outgoing(n.ID))+len(s.Incoming(n.ID)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sameRels(a, b []*value.Relationship) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func TestPropIndexMaintainedOnMutators(t *testing.T) {
	s := New()
	n := s.CreateNode([]string{"L"}, map[string]value.Value{"k": value.NewInt(1)})

	// Build the index, then mutate through every store entry point.
	if got := s.NodesByLabelProp("L", "k", value.NewInt(1)); len(got) != 1 {
		t.Fatalf("initial hit = %d", len(got))
	}
	s.SetNodeProp(n, "k", value.NewInt(2))
	if len(s.NodesByLabelProp("L", "k", value.NewInt(1))) != 0 ||
		len(s.NodesByLabelProp("L", "k", value.NewInt(2))) != 1 {
		t.Error("index stale after SetNodeProp")
	}
	s.SetNodeProp(n, "k", value.Null)
	if len(s.NodesByLabelProp("L", "k", value.NewInt(2))) != 0 {
		t.Error("index stale after property removal")
	}
	s.SetNodeProp(n, "k", value.NewInt(3))
	s.RemoveLabel(n, "L")
	if len(s.NodesByLabelProp("L", "k", value.NewInt(3))) != 0 {
		t.Error("index stale after RemoveLabel")
	}
	s.AddLabel(n, "L")
	if len(s.NodesByLabelProp("L", "k", value.NewInt(3))) != 1 {
		t.Error("index stale after AddLabel")
	}
	m := s.CreateNode([]string{"L"}, map[string]value.Value{"k": value.NewInt(3)})
	if len(s.NodesByLabelProp("L", "k", value.NewInt(3))) != 2 {
		t.Error("index stale after CreateNode")
	}
	if err := s.DeleteNode(m, true); err != nil {
		t.Fatal(err)
	}
	if len(s.NodesByLabelProp("L", "k", value.NewInt(3))) != 1 {
		t.Error("index stale after DeleteNode")
	}
	// AddNode with explicit entity.
	s.AddNode(&value.Node{ID: 1000, Labels: []string{"L"}, Props: map[string]value.Value{"k": value.NewInt(3)}})
	if len(s.NodesByLabelProp("L", "k", value.NewInt(3))) != 2 {
		t.Error("index stale after AddNode")
	}
}

func TestSetNodePropForeignNode(t *testing.T) {
	s := New()
	s.CreateNode([]string{"L"}, map[string]value.Value{"k": value.NewInt(1)})
	if len(s.NodesByLabelProp("L", "k", value.NewInt(1))) != 1 {
		t.Fatal("setup")
	}
	// A node that is not a member of the store must not leak into its
	// indexes when its properties are set through the store.
	foreign := &value.Node{ID: 9999, Labels: []string{"L"}, Props: map[string]value.Value{}}
	s.SetNodeProp(foreign, "k", value.NewInt(1))
	if value.Key(foreign.Props["k"]) != value.Key(value.NewInt(1)) {
		t.Error("foreign node props not mutated")
	}
	if len(s.NodesByLabelProp("L", "k", value.NewInt(1))) != 1 {
		t.Error("foreign node leaked into the property index")
	}
}

func ExampleStore_NodesByLabelProp() {
	s := New()
	for i := 0; i < 4; i++ {
		s.CreateNode([]string{"User"}, map[string]value.Value{"bucket": value.NewInt(int64(i % 2))})
	}
	fmt.Println(len(s.NodesByLabelProp("User", "bucket", value.NewInt(0))))
	// Output: 2
}
