package graphstore

// Property-value indexes: lazily-built hash indexes on
// (label, propertyKey) → value → []*Node. The pattern matcher consults
// them when a node pattern carries an inline property map, or when a
// conjunctive equality predicate (n.k = <literal/param>) was pushed
// down out of WHERE.
//
// Indexes are built on first lookup by scanning the label's node list,
// then maintained incrementally by every store mutator
// (AddNode/DeleteNode/AddLabel/RemoveLabel/SetNodeProp): the rolling
// snapshot store of the incremental engine is long-lived, so a
// rebuild-on-mutation policy would cost O(label) per stream element.
// Maintenance follows the incremental-view-maintenance discipline: each
// mutation applies the exact delta (remove old entry, insert new), so a
// lookup after any mutation sequence equals a lookup on a freshly built
// index (see TestPropIndexMaintenanceQuick).

import (
	"seraph/internal/symtab"
	"seraph/internal/value"
)

// propIdxKey names one index: nodes with a label, bucketed by the value
// of one property key. Both halves are interned symbol IDs so the map
// hash is over two small ints; property keys reaching here are interned
// by propIndexLocked the first time an index is requested.
type propIdxKey struct {
	label symtab.ID
	key   symtab.ID
}

// propIndex buckets a label's nodes by the value.Key of one property.
// Nodes lacking the property are absent. Bucket slices are kept sorted
// by node id so index-served candidate enumeration matches the order of
// a label-list scan.
type propIndex struct {
	byVal map[string][]*value.Node
}

// NodesByLabelProp returns the nodes carrying label whose property key
// equals val, served from a lazily-built hash index. The returned slice
// must not be mutated. Equality follows value.Key identity, matching
// the matcher's value.Equal on ground (non-null) values.
func (s *Store) NodesByLabelProp(label, key string, val value.Value) []*value.Node {
	if val.IsNull() {
		return nil // n.k = null is never true; no node can match
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	return s.propIndexLocked(label, key).byVal[value.Key(val)]
}

// PropIndexCount returns the number of nodes the (label, key) index
// holds under val — the planner's index-hit-size statistic. It builds
// the index as a side effect, which is the intended warming behavior:
// the planner probes exactly the indexes the matcher is about to use.
func (s *Store) PropIndexCount(label, key string, val value.Value) int {
	return len(s.NodesByLabelProp(label, key, val))
}

// PropIndexes reports how many (label, key) indexes have been built.
func (s *Store) PropIndexes() int {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	return len(s.propIdx)
}

// propIndexLocked returns (building on first use) the index for
// (label, key). Caller holds idxMu.
func (s *Store) propIndexLocked(label, key string) *propIndex {
	ik := propIdxKey{symtab.Intern(label), symtab.Intern(key)}
	if idx, ok := s.propIdx[ik]; ok {
		return idx
	}
	idx := &propIndex{byVal: map[string][]*value.Node{}}
	for _, n := range s.label[ik.label] {
		if v, ok := n.Props[key]; ok {
			vk := value.Key(v)
			idx.byVal[vk] = append(idx.byVal[vk], n)
		}
	}
	for _, bucket := range idx.byVal {
		sortNodes(bucket)
	}
	s.propIdx[ik] = idx
	return idx
}

// ---------------------------------------------------------------------------
// Incremental maintenance. Each hook applies the mutation's delta to
// every already-built index it touches; indexes not yet built need no
// work (they will scan the post-mutation label list when first used).

// propIndexAddNode inserts n into every built index covering one of its
// labels.
func (s *Store) propIndexAddNode(n *value.Node) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if len(s.propIdx) == 0 {
		return
	}
	for ik, idx := range s.propIdx {
		if !n.HasLabel(symtab.Name(ik.label)) {
			continue
		}
		if v, ok := n.Props[symtab.Name(ik.key)]; ok {
			idx.insert(value.Key(v), n)
		}
	}
}

// propIndexRemoveNode removes n from every built index covering one of
// its labels.
func (s *Store) propIndexRemoveNode(n *value.Node) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if len(s.propIdx) == 0 {
		return
	}
	for ik, idx := range s.propIdx {
		if !n.HasLabel(symtab.Name(ik.label)) {
			continue
		}
		if v, ok := n.Props[symtab.Name(ik.key)]; ok {
			idx.remove(value.Key(v), n.ID)
		}
	}
}

// propIndexAddLabel inserts n into built indexes anchored on the label
// it just gained.
func (s *Store) propIndexAddLabel(n *value.Node, label string) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	lid := symtab.Lookup(label)
	for ik, idx := range s.propIdx {
		if ik.label != lid {
			continue
		}
		if v, ok := n.Props[symtab.Name(ik.key)]; ok {
			idx.insert(value.Key(v), n)
		}
	}
}

// propIndexRemoveLabel removes n from built indexes anchored on the
// label it just lost. Called after the label has been removed from
// n.Labels.
func (s *Store) propIndexRemoveLabel(n *value.Node, label string) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	lid := symtab.Lookup(label)
	for ik, idx := range s.propIdx {
		if ik.label != lid {
			continue
		}
		if v, ok := n.Props[symtab.Name(ik.key)]; ok {
			idx.remove(value.Key(v), n.ID)
		}
	}
}

// propIndexSetProp re-buckets n in every built (label, key) index after
// the property changed from old (when had) to v.
func (s *Store) propIndexSetProp(n *value.Node, key string, old value.Value, had bool, v value.Value) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if len(s.propIdx) == 0 {
		return
	}
	kid := symtab.Lookup(key)
	for _, label := range n.Labels {
		idx, ok := s.propIdx[propIdxKey{symtab.Lookup(label), kid}]
		if !ok {
			continue
		}
		if had {
			idx.remove(value.Key(old), n.ID)
		}
		if !v.IsNull() {
			idx.insert(value.Key(v), n)
		}
	}
}

// insert adds n to the bucket for vk, keeping the bucket sorted by id.
// Inserting an id already present is a no-op (idempotent under re-adds).
func (idx *propIndex) insert(vk string, n *value.Node) {
	bucket := idx.byVal[vk]
	i := 0
	for ; i < len(bucket); i++ {
		if bucket[i].ID == n.ID {
			bucket[i] = n // same id re-added (e.g. window re-entry): refresh pointer
			return
		}
		if bucket[i].ID > n.ID {
			break
		}
	}
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = n
	idx.byVal[vk] = bucket
}

// remove drops node id from the bucket for vk, deleting empty buckets.
func (idx *propIndex) remove(vk string, id int64) {
	bucket := idx.byVal[vk]
	for i, n := range bucket {
		if n.ID == id {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(idx.byVal, vk)
			} else {
				idx.byVal[vk] = bucket
			}
			return
		}
	}
}
