package seraph_test

import (
	"fmt"
	"time"

	"seraph"
)

// ExampleGraphDB demonstrates the embedded one-time Cypher engine.
func ExampleGraphDB() {
	db := seraph.NewGraphDB()
	db.MustExec(`CREATE (:City {name: 'Leipzig'})-[:TWINNED]->(:City {name: 'Lyon'})`, nil)
	out := db.MustExec(`MATCH (a:City)-[:TWINNED]->(b:City) RETURN a.name AS a, b.name AS b`, nil)
	for _, row := range out.Maps() {
		fmt.Println(row["a"], "→", row["b"])
	}
	// Output: Leipzig → Lyon
}

// ExampleEngine demonstrates a Seraph continuous query over a property
// graph stream: a 30-second window evaluated every 10 seconds, emitting
// only matches that newly entered the window.
func ExampleEngine() {
	engine := seraph.NewEngine()
	_, err := engine.Register(`
REGISTER QUERY hot STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z:Zone)
  WITHIN PT30S
  WHERE r.celsius > 40.0
  EMIT s.name AS sensor, r.celsius AS celsius
  ON ENTERING EVERY PT10S
}`, func(r seraph.Result) {
		for _, row := range r.Table.Maps() {
			fmt.Printf("%s: %v at %v°C\n", r.At.Format("15:04:05"), row["sensor"], row["celsius"])
		}
	})
	if err != nil {
		panic(err)
	}

	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	readings := []struct {
		offset  time.Duration
		celsius float64
	}{{0, 21.0}, {10 * time.Second, 44.5}, {20 * time.Second, 39.0}}
	for i, rd := range readings {
		g := seraph.NewGraph()
		g.AddNode(1, []string{"Sensor"}, map[string]any{"name": "s1"})
		g.AddNode(2, []string{"Zone"}, map[string]any{"name": "hall"})
		g.AddRelationship(int64(100+i), 1, 2, "READ", map[string]any{"celsius": rd.celsius})
		if err := engine.PushAndAdvance(g, start.Add(rd.offset)); err != nil {
			panic(err)
		}
	}
	// Output: 10:00:10: s1 at 44.5°C
}

// ExampleEngine_paperRunningExample replays the EDBT 2024 paper's
// Figure 1 bike-rental stream through the Listing 5 query and prints
// the Tables 5/6 outputs.
func ExampleEngine_paperRunningExample() {
	engine := seraph.NewEngine()
	_, err := engine.Register(`
REGISTER QUERY student_trick STARTING AT 2022-10-14T14:45:00
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station),
        q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
  WITHIN PT1H
  WITH r, s, q, relationships(q) AS rels,
       [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
  WHERE all(e IN rels WHERE
        e.user_id = r.user_id AND e.val_time > r.val_time AND
        (e.duration IS NULL OR e.duration < 20))
  EMIT r.user_id, s.id, r.val_time, hops
  ON ENTERING EVERY PT5M
}`, func(r seraph.Result) {
		for _, row := range r.Table.Maps() {
			fmt.Printf("%s: user %v (stations %v)\n",
				r.At.Format("15:04"), row["r.user_id"], row["hops"])
		}
	})
	if err != nil {
		panic(err)
	}

	day := time.Date(2022, 10, 14, 0, 0, 0, 0, time.UTC)
	at := func(h, m int) time.Time {
		return day.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
	}
	type rental struct {
		vehicle, station, user int64
		ret                    bool
		t                      time.Time
		dur                    int64
	}
	events := []struct {
		ts      time.Time
		rentals []rental
	}{
		{at(14, 45), []rental{{5, 1, 1234, false, at(14, 40), 0}}},
		{at(15, 0), []rental{
			{5, 2, 1234, true, at(14, 55), 15},
			{6, 2, 1234, false, at(14, 57), 0},
			{8, 2, 5678, false, at(14, 58), 0}}},
		{at(15, 15), []rental{{6, 3, 1234, true, at(15, 13), 16}}},
		{at(15, 20), []rental{
			{8, 3, 5678, true, at(15, 15), 17},
			{7, 3, 5678, false, at(15, 18), 0}}},
		{at(15, 40), []rental{{7, 4, 5678, true, at(15, 35), 17}}},
	}
	for _, ev := range events {
		g := seraph.NewGraph()
		for i, r := range ev.rentals {
			g.AddNode(100+r.station, []string{"Station"}, map[string]any{"id": r.station})
			g.AddNode(200+r.vehicle, []string{"Bike"}, map[string]any{"id": r.vehicle})
			typ := "rentedAt"
			props := map[string]any{"user_id": r.user, "val_time": r.t}
			if r.ret {
				typ = "returnedAt"
				props["duration"] = r.dur
			}
			g.AddRelationship(ev.ts.Unix()*10+int64(i), 200+r.vehicle, 100+r.station, typ, props)
		}
		if err := engine.PushAndAdvance(g, ev.ts); err != nil {
			panic(err)
		}
	}
	// Output:
	// 15:15: user 1234 (stations [2 3])
	// 15:40: user 5678 (stations [3 4])
}
