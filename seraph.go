package seraph

import (
	"fmt"
	"io"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/value"
	"seraph/internal/window"
)

// Table is a query result: named columns over rows of Go values (see
// FromValue for the type mapping).
type Table struct {
	Columns []string
	Rows    [][]any
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Get returns the value of the named column in row i, or nil.
func (t *Table) Get(i int, col string) any {
	for j, c := range t.Columns {
		if c == col {
			return t.Rows[i][j]
		}
	}
	return nil
}

// Maps returns the rows as column→value maps.
func (t *Table) Maps() []map[string]any {
	out := make([]map[string]any, len(t.Rows))
	for i, row := range t.Rows {
		m := make(map[string]any, len(t.Columns))
		for j, c := range t.Columns {
			m[c] = row[j]
		}
		out[i] = m
	}
	return out
}

func fromTable(t *eval.Table) *Table {
	out := &Table{Columns: append([]string(nil), t.Cols...)}
	for _, row := range t.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = FromValue(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out
}

// StreamOp identifies the stream operator that produced a result.
type StreamOp string

// Stream operators.
const (
	Snapshot   StreamOp = "SNAPSHOT"
	OnEntering StreamOp = "ON ENTERING"
	OnExiting  StreamOp = "ON EXITING"
)

// Result is one output of a registered continuous query: a
// time-annotated table produced at evaluation instant At. The table
// includes the reserved win_start and win_end columns.
type Result struct {
	Query    string
	At       time.Time
	WinStart time.Time
	WinEnd   time.Time
	Op       StreamOp
	Table    *Table
}

// WindowBounds selects how window bounds are interpreted; see DESIGN.md
// for why two modes exist.
type WindowBounds int

// Window bounds modes.
const (
	// BoundsPaperExample (default) reproduces the paper's worked
	// example: the active window at evaluation instant ω is (ω−α, ω].
	BoundsPaperExample WindowBounds = iota
	// BoundsStrict follows Definitions 5.9/5.11 literally.
	BoundsStrict
)

// Option configures an Engine.
type Option func(*options)

type options struct {
	bounds      window.Bounds
	cache       bool
	static      *Graph
	incremental bool
	parallelism int
}

// WithWindowBounds selects the bounds mode.
func WithWindowBounds(b WindowBounds) Option {
	return func(o *options) {
		if b == BoundsStrict {
			o.bounds = window.BoundsStrict
		} else {
			o.bounds = window.BoundsPaperExample
		}
	}
}

// WithSnapshotCache reuses evaluation results across evaluations whose
// window contents did not change (the re-execution-avoidance
// optimization sketched in the paper's Section 6).
func WithSnapshotCache(on bool) Option {
	return func(o *options) { o.cache = on }
}

// WithStaticGraph unions a static background graph into every snapshot
// graph, so continuous queries can join streaming data against
// reference data (e.g. a topology or a POLE knowledge base). The
// engine takes ownership of g.
func WithStaticGraph(g *Graph) Option {
	return func(o *options) { o.static = g }
}

// WithIncrementalSnapshots maintains each query's snapshot graph
// incrementally (refcounted rolling window) instead of re-unioning the
// whole window at every evaluation — typically several times faster
// when windows overlap heavily. Queries that emit nodes/relationships
// (rather than scalars) observe live views that change as the window
// slides.
func WithIncrementalSnapshots(on bool) Option {
	return func(o *options) { o.incremental = on }
}

// WithParallelism bounds how many registered queries AdvanceTo
// evaluates concurrently; n <= 0 (the default) selects
// runtime.GOMAXPROCS(0). Each query's own results stay in evaluation
// order regardless of parallelism, so per-query sinks observe the same
// sequence at any setting; with parallelism 1 all queries additionally
// interleave in global timestamp order.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// Engine hosts registered Seraph continuous queries and evaluates them
// over a property graph stream driven by a virtual clock. It is safe
// for concurrent use, and sinks may call back into the engine.
type Engine struct {
	e *engine.Engine
}

// NewEngine returns a continuous query engine.
func NewEngine(opts ...Option) *Engine {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	opts2 := []engine.Option{
		engine.WithBounds(o.bounds),
		engine.WithSnapshotCache(o.cache),
		engine.WithParallelism(o.parallelism),
	}
	if o.static != nil {
		opts2 = append(opts2, engine.WithStaticGraph(o.static.internalGraph()))
	}
	if o.incremental {
		opts2 = append(opts2, engine.WithIncrementalSnapshots(true))
	}
	return &Engine{e: engine.New(opts2...)}
}

// Query is a handle to a registered continuous query.
type Query struct {
	q *engine.Query
}

// Name returns the registration name.
func (q *Query) Name() string { return q.q.Name() }

// Stats summarizes a query's activity.
type Stats struct {
	Evaluations    int
	SkippedByCache int
	ElementsSeen   int
	RowsEmitted    int
}

// Stats returns the query's counters.
func (q *Query) Stats() Stats {
	s := q.q.Stats()
	return Stats{
		Evaluations:    s.Evaluations,
		SkippedByCache: s.SkippedByCache,
		ElementsSeen:   s.ElementsSeen,
		RowsEmitted:    s.RowsEmitted,
	}
}

// Register parses a REGISTER QUERY statement (Figure 6 syntax) and
// registers it. sink is invoked synchronously, in evaluation order,
// once per evaluation time instant.
func (e *Engine) Register(src string, sink func(Result)) (*Query, error) {
	var s engine.Sink
	if sink != nil {
		s = func(r engine.Result) { sink(convertResult(r)) }
	}
	q, err := e.e.RegisterSource(src, s)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Subscribe registers a query and returns a channel of results with
// the given buffer size. The channel is closed when the engine's
// stream ends (Close) — callers driving the engine manually should
// simply stop reading instead.
func (e *Engine) Subscribe(src string, buffer int) (*Query, <-chan Result, error) {
	ch := make(chan Result, buffer)
	q, err := e.Register(src, func(r Result) {
		ch <- r
	})
	if err != nil {
		return nil, nil, err
	}
	return q, ch, nil
}

func convertResult(r engine.Result) Result {
	op := Snapshot
	switch r.Op.String() {
	case "ON ENTERING":
		op = OnEntering
	case "ON EXITING":
		op = OnExiting
	}
	return Result{
		Query:    r.Query,
		At:       r.At,
		WinStart: r.Window.Start,
		WinEnd:   r.Window.End,
		Op:       op,
		Table:    fromTable(r.Table),
	}
}

// Deregister removes a registered query by name.
func (e *Engine) Deregister(name string) error { return e.e.Deregister(name) }

// Push appends a stream element (G, ω) to the engine's input stream.
// Elements must arrive in non-decreasing timestamp order. Push does not
// trigger evaluations; call AdvanceTo (or PushAndAdvance).
func (e *Engine) Push(g *Graph, ts time.Time) error {
	return e.e.Push(g.internalGraph(), ts)
}

// PushAndAdvance pushes an element and advances the virtual clock to
// its timestamp, running all due evaluations.
func (e *Engine) PushAndAdvance(g *Graph, ts time.Time) error {
	if err := e.Push(g, ts); err != nil {
		return err
	}
	return e.AdvanceTo(ts)
}

// AdvanceTo moves the virtual clock to ts, running every evaluation
// time instant that became due across all registered queries, in
// timestamp order.
func (e *Engine) AdvanceTo(ts time.Time) error { return e.e.AdvanceTo(ts) }

// RegisterOn registers a query bound to a named logical stream: it only
// consumes elements pushed via PushTo with the same stream name.
func (e *Engine) RegisterOn(streamName, src string, sink func(Result)) (*Query, error) {
	var s engine.Sink
	if sink != nil {
		s = func(r engine.Result) { sink(convertResult(r)) }
	}
	q, err := e.e.RegisterSourceOn(streamName, src, s)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// PushTo appends a stream element to a named logical stream.
func (e *Engine) PushTo(streamName string, g *Graph, ts time.Time) error {
	return e.e.PushStream(streamName, g.internalGraph(), ts)
}

// Now returns the engine's virtual clock.
func (e *Engine) Now() time.Time { return e.e.Now() }

// ---------------------------------------------------------------------------
// Parameters

// Params converts a Go map to query parameters.
func Params(m map[string]any) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(m))
	for k, v := range m {
		cv, err := ToValue(v)
		if err != nil {
			return nil, fmt.Errorf("seraph: parameter $%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}

// Checkpoint serializes the engine's durable state (registrations,
// window positions, retained stream history) so a restarted process can
// resume with RestoreEngine exactly where it stopped — including
// ON ENTERING / ON EXITING continuity across the restart.
// Parameterized registrations are not checkpointable.
func (e *Engine) Checkpoint(w io.Writer) error { return e.e.Checkpoint(w) }

// RestoreEngine reconstructs an engine from a checkpoint written by
// Checkpoint. sinkFor is called once per restored query to re-bind its
// result sink; it may return nil.
func RestoreEngine(r io.Reader, sinkFor func(queryName string) func(Result)) (*Engine, error) {
	var adapt func(string) engine.Sink
	if sinkFor != nil {
		adapt = func(name string) engine.Sink {
			sink := sinkFor(name)
			if sink == nil {
				return nil
			}
			return func(res engine.Result) { sink(convertResult(res)) }
		}
	}
	inner, err := engine.Restore(r, adapt)
	if err != nil {
		return nil, err
	}
	return &Engine{e: inner}, nil
}
