// Command seraph-repro regenerates every table of the Seraph paper
// (EDBT 2024) from this implementation:
//
//	Table 2 — the Cypher-only workaround (Listing 1) at 15:40
//	Table 4 — Table 2 extended with time annotations (win_start/win_end)
//	Table 5 — Seraph continuous query (Listing 5) output at 15:15
//	Table 6 — Seraph continuous query output at 15:40
//
// plus the Figure 1 stream inventory and the Figure 2 merged graph.
//
//	go run ./cmd/seraph-repro            # everything
//	go run ./cmd/seraph-repro -table 5   # one table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/parser"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/window"
	"seraph/internal/workload"
)

var boundsFlag string

func main() {
	tableFlag := flag.Int("table", 0, "print a single table (2, 4, 5 or 6); 0 prints everything")
	verify := flag.Bool("verify", false, "assert the outputs match the paper and exit non-zero on mismatch")
	flag.StringVar(&boundsFlag, "bounds", "paper", "window bounds mode: paper (reproduces Tables 5/6) or strict (literal Definitions 5.9/5.11)")
	flag.Parse()

	if *verify {
		if err := verifyAll(); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("VERIFY OK: Tables 2, 4, 5, 6 and Figures 1/2 match the paper")
		return
	}

	switch *tableFlag {
	case 0:
		printFigures()
		fmt.Println()
		printTable2(false)
		fmt.Println()
		printTable2(true)
		fmt.Println()
		printSeraphTables(0)
	case 2:
		printTable2(false)
	case 4:
		printTable2(true)
	case 5, 6:
		printSeraphTables(*tableFlag)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (want 2, 4, 5 or 6)\n", *tableFlag)
		os.Exit(2)
	}
}

func clock(h, m int) time.Time {
	return workload.FigureOneDay.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
}

// display reformats a result table for printing: datetimes shown as
// HH:MM, matching the paper's table style.
func display(t *eval.Table) *eval.Table {
	out := &eval.Table{Cols: t.Cols}
	for _, row := range t.Rows {
		vals := make([]value.Value, len(row))
		for j, v := range row {
			if v.Kind() == value.KindDateTime {
				vals[j] = value.NewString(v.DateTime().Format("15:04"))
			} else {
				vals[j] = v
			}
		}
		out.Rows = append(out.Rows, vals)
	}
	return out
}

func printFigures() {
	elems := workload.Figure1Stream()
	fmt.Println("Figure 1 — stream of property graphs (RideAnywhere events):")
	for _, e := range elems {
		fmt.Printf("  %s: %d nodes, %d relationships\n",
			e.Time.Format("15:04"), e.Graph.NumNodes(), e.Graph.NumRels())
	}
	g, err := stream.Snapshot(elems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2 — merged graph 14:45–15:40: %d nodes, %d relationships\n",
		g.NumNodes(), g.NumRels())
}

func printTable2(annotated bool) {
	g, err := stream.Snapshot(workload.Figure1Stream())
	if err != nil {
		log.Fatal(err)
	}
	q, err := parser.ParseQuery(workload.StudentTrickCypher + " ORDER BY r.user_id")
	if err != nil {
		log.Fatal(err)
	}
	at := clock(15, 40)
	ctx := &eval.Ctx{
		Store:    graphstore.FromGraph(g),
		Builtins: map[string]value.Value{"now": value.NewDateTime(at)},
	}
	out, err := eval.EvalQuery(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	if !annotated {
		fmt.Println("Table 2 — Cypher-only query (Listing 1) evaluated at 15:40:")
		fmt.Print(display(out))
		return
	}
	// Table 4 extends Table 2 with the window's temporal annotations.
	ann := &eval.Table{Cols: append(append([]string(nil), out.Cols...), "win_start", "win_end")}
	ws, we := value.NewDateTime(at.Add(-time.Hour)), value.NewDateTime(at)
	for _, row := range out.Rows {
		ann.Rows = append(ann.Rows, append(append([]value.Value(nil), row...), ws, we))
	}
	fmt.Println("Table 4 — time-annotated table (Definition 5.6):")
	fmt.Print(display(ann))
}

func printSeraphTables(only int) {
	bounds := window.BoundsPaperExample
	if boundsFlag == "strict" {
		bounds = window.BoundsStrict
		fmt.Println("(strict Definitions 5.9/5.11 bounds: window starts lie on the")
		fmt.Println(" ω₀+iβ grid and exclude the right endpoint — the outputs below")
		fmt.Println(" differ from the paper's Tables 5/6; see DESIGN.md)")
		fmt.Println()
	}
	e := engine.New(engine.WithBounds(bounds))
	col := &engine.Collector{}
	if _, err := e.RegisterSource(workload.StudentTrickQuery, col.Sink()); err != nil {
		log.Fatal(err)
	}
	for _, el := range workload.Figure1Stream() {
		if err := e.Push(el.Graph, el.Time); err != nil {
			log.Fatal(err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			log.Fatal(err)
		}
	}
	show := func(h, m, table int) {
		r := col.At(clock(h, m))
		if r == nil {
			log.Fatalf("no evaluation at %02d:%02d", h, m)
		}
		fmt.Printf("Table %d — Seraph output (Listing 5, ON ENTERING) at %02d:%02d:\n", table, h, m)
		if r.Table.Len() == 0 {
			fmt.Println("(empty)")
			return
		}
		fmt.Print(display(r.Table))
	}
	switch only {
	case 5:
		show(15, 15, 5)
	case 6:
		show(15, 40, 6)
	default:
		show(15, 15, 5)
		fmt.Println()
		show(15, 40, 6)
		fmt.Println()
		fmt.Println("All evaluation instants (empty emissions elided):")
		for _, r := range col.Results {
			fmt.Printf("  %s: window %s, %d row(s)\n",
				r.At.Format("15:04"), r.Window, r.Table.Len())
		}
	}
}

// verifyAll asserts every reproduced artifact against the paper's
// published values, for CI use.
func verifyAll() error {
	// Figure 2.
	g, err := stream.Snapshot(workload.Figure1Stream())
	if err != nil {
		return err
	}
	if g.NumNodes() != 8 || g.NumRels() != 8 {
		return fmt.Errorf("Figure 2: %d nodes / %d rels, want 8/8", g.NumNodes(), g.NumRels())
	}

	// Table 2 (and 4, which shares the rows).
	q, err := parser.ParseQuery(workload.StudentTrickCypher + " ORDER BY r.user_id")
	if err != nil {
		return err
	}
	ctx := &eval.Ctx{
		Store:    graphstore.FromGraph(g),
		Builtins: map[string]value.Value{"now": value.NewDateTime(clock(15, 40))},
	}
	out, err := eval.EvalQuery(ctx, q)
	if err != nil {
		return err
	}
	if err := checkTrick(out, 0, 1234, 1, "14:40", "[2, 3]"); err != nil {
		return fmt.Errorf("Table 2 row 1: %w", err)
	}
	if err := checkTrick(out, 1, 5678, 2, "14:58", "[3, 4]"); err != nil {
		return fmt.Errorf("Table 2 row 2: %w", err)
	}

	// Tables 5 and 6.
	e := engine.New()
	col := &engine.Collector{}
	if _, err := e.RegisterSource(workload.StudentTrickQuery, col.Sink()); err != nil {
		return err
	}
	for _, el := range workload.Figure1Stream() {
		if err := e.Push(el.Graph, el.Time); err != nil {
			return err
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			return err
		}
	}
	t5 := col.At(clock(15, 15))
	if t5 == nil || t5.Table.Len() != 1 {
		return fmt.Errorf("Table 5: missing or wrong row count")
	}
	if err := checkTrick(t5.Table, 0, 1234, 1, "14:40", "[2, 3]"); err != nil {
		return fmt.Errorf("Table 5: %w", err)
	}
	if !t5.Window.Start.Equal(clock(14, 15)) || !t5.Window.End.Equal(clock(15, 15)) {
		return fmt.Errorf("Table 5 window: %s", t5.Window)
	}
	t6 := col.At(clock(15, 40))
	if t6 == nil || t6.Table.Len() != 1 {
		return fmt.Errorf("Table 6: missing or wrong row count")
	}
	if err := checkTrick(t6.Table, 0, 5678, 2, "14:58", "[3, 4]"); err != nil {
		return fmt.Errorf("Table 6: %w", err)
	}
	for _, r := range col.Results {
		if !r.At.Equal(clock(15, 15)) && !r.At.Equal(clock(15, 40)) && r.Table.Len() != 0 {
			return fmt.Errorf("unexpected emission at %s", r.At.Format("15:04"))
		}
	}
	return nil
}

func checkTrick(t *eval.Table, row int, user, station int64, valTime, hops string) error {
	if t.Len() <= row {
		return fmt.Errorf("row %d missing", row)
	}
	if got := t.Get(row, "r.user_id").Int(); got != user {
		return fmt.Errorf("user = %d, want %d", got, user)
	}
	if got := t.Get(row, "s.id").Int(); got != station {
		return fmt.Errorf("station = %d, want %d", got, station)
	}
	if got := t.Get(row, "r.val_time").DateTime().Format("15:04"); got != valTime {
		return fmt.Errorf("val_time = %s, want %s", got, valTime)
	}
	if got := t.Get(row, "hops").String(); got != hops {
		return fmt.Errorf("hops = %s, want %s", got, hops)
	}
	return nil
}
