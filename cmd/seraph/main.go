// Command seraph runs Seraph continuous queries over property graph
// event streams, and one-time Cypher queries over static graphs.
//
// Subcommands:
//
//	gen   generate a workload as NDJSON events on stdout
//	run   run a REGISTER QUERY over an NDJSON event stream
//	exec  run a one-time Cypher query over the merged graph of a stream
//
// Examples:
//
//	seraph gen -workload micromobility -batches 50 > events.ndjson
//	seraph run -query trick.seraph < events.ndjson
//	seraph exec -query 'MATCH (n) RETURN count(*)' < events.ndjson
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"seraph/internal/ast"
	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/ingest"
	"seraph/internal/parser"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "seraph: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "seraph: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  seraph gen  -workload micromobility|netmon|pole|figure1 [-batches N] [-seed S]
  seraph run  -query FILE|QUERYTEXT [-events FILE] [-quiet]
  seraph exec -query FILE|QUERYTEXT [-events FILE] [-at DATETIME]
  seraph fmt  -query FILE|QUERYTEXT
`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wl := fs.String("workload", "micromobility", "workload: micromobility, netmon, pole or figure1")
	batches := fs.Int("batches", 20, "number of event batches")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var events []stream.Element
	switch *wl {
	case "figure1":
		events = workload.Figure1Stream()
	case "micromobility":
		cfg := workload.DefaultMicroMobilityConfig()
		cfg.Seed = *seed
		events = workload.NewMicroMobility(cfg).Batches(*batches)
	case "netmon":
		cfg := workload.DefaultNetworkConfig()
		cfg.Seed = *seed
		events = workload.NewNetwork(cfg).Batches(*batches)
	case "pole":
		cfg := workload.DefaultPOLEConfig()
		cfg.Seed = *seed
		events = workload.NewPOLE(cfg).Batches(*batches)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range events {
		data, err := ingest.Encode(e.Graph, e.Time)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

func loadQuery(arg string) (string, error) {
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		data, err := os.ReadFile(arg)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return arg, nil
}

// readEvents decodes NDJSON events from r into broker topic "events".
func readEvents(r io.Reader, b *queue.Broker) (int, error) {
	if err := b.CreateTopic("events", 1); err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// Validate + extract timestamp for the broker record.
		_, ts, err := ingest.Decode([]byte(line))
		if err != nil {
			return n, fmt.Errorf("event %d: %w", n+1, err)
		}
		if _, err := b.Produce("events", "", []byte(line), ts); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func eventsReader(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	queryArg := fs.String("query", "", "Seraph REGISTER QUERY text or file")
	eventsArg := fs.String("events", "-", "NDJSON event stream file (default stdin)")
	quiet := fs.Bool("quiet", false, "suppress empty emissions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryArg == "" {
		return fmt.Errorf("run: -query is required")
	}
	src, err := loadQuery(*queryArg)
	if err != nil {
		return err
	}

	broker := queue.NewBroker()
	in, err := eventsReader(*eventsArg)
	if err != nil {
		return err
	}
	defer in.Close()
	if _, err := readEvents(in, broker); err != nil {
		return err
	}

	e := engine.New()
	emitted := 0
	_, err = e.RegisterSource(src, func(r engine.Result) {
		if r.Table.Len() == 0 && *quiet {
			return
		}
		fmt.Printf("== %s @ %s  window %s  (%s, %d rows)\n",
			r.Query, r.At.Format(time.RFC3339), r.Window, r.Op, r.Table.Len())
		if r.Table.Len() > 0 {
			fmt.Print(r.Table)
		}
		emitted += r.Table.Len()
	})
	if err != nil {
		return err
	}

	conn, err := ingest.NewConnector(broker, "events", func(g *pg.Graph, ts time.Time) error {
		if err := e.Push(g, ts); err != nil {
			return err
		}
		return e.AdvanceTo(ts)
	})
	if err != nil {
		return err
	}
	n, err := conn.Drain()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seraph run: %d events, %d result rows\n", n, emitted)
	return nil
}

// cmdFmt parses a Cypher query or Seraph registration and prints it in
// normalized surface syntax (a syntax checker and formatter in one).
func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	queryArg := fs.String("query", "", "query text or file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryArg == "" {
		return fmt.Errorf("fmt: -query is required")
	}
	src, err := loadQuery(*queryArg)
	if err != nil {
		return err
	}
	v, err := parser.Parse(src)
	if err != nil {
		return err
	}
	switch x := v.(type) {
	case *ast.Registration:
		fmt.Println(ast.RegistrationString(x))
	case *ast.Query:
		fmt.Println(ast.QueryString(x))
	}
	return nil
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	queryArg := fs.String("query", "", "Cypher query text or file")
	eventsArg := fs.String("events", "-", "NDJSON event stream file (default stdin); merged into one graph")
	atArg := fs.String("at", "", "virtual evaluation time for datetime() (ISO 8601)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryArg == "" {
		return fmt.Errorf("exec: -query is required")
	}
	src, err := loadQuery(*queryArg)
	if err != nil {
		return err
	}
	q, err := parser.ParseQuery(src)
	if err != nil {
		return err
	}

	store := graphstore.New()
	in, err := eventsReader(*eventsArg)
	if err != nil {
		return err
	}
	defer in.Close()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var last time.Time
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		g, ts, err := ingest.Decode([]byte(line))
		if err != nil {
			return err
		}
		if err := ingest.MergeInto(store, g); err != nil {
			return err
		}
		if ts.After(last) {
			last = ts
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	at := last
	if *atArg != "" {
		at, err = value.ParseDateTime(*atArg)
		if err != nil {
			return err
		}
	}
	ctx := &eval.Ctx{Store: store, Builtins: map[string]value.Value{}}
	if !at.IsZero() {
		ctx.Builtins["now"] = value.NewDateTime(at)
	}
	out, err := eval.EvalQuery(ctx, q)
	if err != nil {
		return err
	}
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "seraph exec: %d nodes, %d relationships, %d rows\n",
		store.NumNodes(), store.NumRels(), out.Len())
	return nil
}
