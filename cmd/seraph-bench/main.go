// Command seraph-bench is the experiment harness for this Seraph
// implementation. The paper (EDBT 2024) is a formal language-design
// paper with no performance evaluation, so the harness characterizes
// the engine itself along the axes the paper argues qualitatively
// (see DESIGN.md, experiments B1–B9):
//
//	B1  engine throughput vs. event rate
//	B2  window width sweep (WITHIN α)
//	B3  slide sweep (EVERY β)
//	B4  emission operators (SNAPSHOT vs ON ENTERING vs ON EXITING)
//	B5  Seraph vs. the Cypher-only polling baseline of Section 3.3
//	B6  variable-length pattern matching cost
//	B7  snapshot graph construction cost
//	B8  shortestPath matching (network monitoring use case)
//	B9  concurrent registered queries
//	B13 predicate selectivity sweep: indexed matcher vs scan baseline
//	B14 delta-ratio sweep: delta-driven vs full evaluation
//	B15 workload scenarios + newly maintained shapes under delta eval
//	B16 multi-query optimization: shared vs unshared evaluation
//	B17 crash-recovery time vs durable log length (checkpoint cadences)
//	B18 MQO sharing hierarchy vs equality-only shared evaluation
//
// Each experiment prints one table of rows/series.
//
//	go run ./cmd/seraph-bench            # all experiments
//	go run ./cmd/seraph-bench -exp B5    # one experiment
//	go run ./cmd/seraph-bench -quick     # reduced sizes for smoke runs
//	go run ./cmd/seraph-bench -exp B13 -selectivity 0.01
//	go run ./cmd/seraph-bench -exp B13 -json BENCH_pr3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"seraph/internal/ast"
	"seraph/internal/baseline"
	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/parser"
	"seraph/internal/pg"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/workload"
)

var (
	quick       bool
	showMetrics bool
	selectivity float64
	jsonOut     string
	allocGuard  string
)

func main() {
	expFlag := flag.String("exp", "all", "experiment id (B1..B18) or all")
	flag.BoolVar(&quick, "quick", false, "reduced problem sizes")
	flag.BoolVar(&showMetrics, "metrics", false, "print an engine metrics snapshot after each run")
	flag.Float64Var(&selectivity, "selectivity", 0,
		"B13: fraction of window nodes matching the pushed predicate (0 = built-in sweep)")
	flag.StringVar(&jsonOut, "json", "", "B13/B14/B15/B16/B18: also write the sweep results as JSON to this file")
	flag.StringVar(&allocGuard, "alloc-guard", "",
		"B14: compare the 1%-churn delta/full allocs-per-instant ratio against this snapshot file and abort if it regressed more than 2x")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"B1", "engine throughput vs. event rate", b1Throughput},
		{"B2", "window width sweep (WITHIN)", b2WindowWidth},
		{"B3", "slide sweep (EVERY)", b3Slide},
		{"B4", "emission operators", b4Emission},
		{"B5", "Seraph vs. Cypher-only polling baseline", b5Baseline},
		{"B6", "variable-length pattern matching", b6VarLength},
		{"B7", "snapshot graph construction", b7Snapshot},
		{"B8", "shortestPath (network monitoring)", b8ShortestPath},
		{"B9", "concurrent registered queries (sequential vs parallel scheduler)", b9Concurrent},
		{"B13", "predicate selectivity sweep (indexed vs scan matcher)", b13Selectivity},
		{"B14", "delta-ratio sweep (delta-driven vs full evaluation)", b14DeltaRatio},
		{"B15", "workload scenarios + new maintained shapes under delta eval", b15WorkloadDelta},
		{"B16", "multi-query optimization: shared vs unshared evaluation", b16MQO},
		{"B17", "crash-recovery time vs durable log length (checkpoint cadences)", b17Recovery},
		{"B18", "MQO sharing hierarchy: width super-groups, subpattern seeding, late-join merge", b18Hierarchy},
	}
	ran := 0
	for _, ex := range experiments {
		if *expFlag != "all" && !strings.EqualFold(*expFlag, ex.id) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", ex.id, ex.name)
		ex.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "seraph-bench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

func scaled(full, reduced int) int {
	if quick {
		return reduced
	}
	return full
}

func header(cols ...string) {
	fmt.Println(strings.Join(cols, "\t"))
}

// dumpMetrics prints a per-query snapshot of the engine's latency
// histograms and counters (enabled with -metrics): the same figures the
// server exposes on /metrics, condensed for experiment logs. With more
// than four queries only the aggregate line is printed.
func dumpMetrics(e *engine.Engine) {
	if !showMetrics {
		return
	}
	qs := e.Queries()
	var (
		evals, rows, hits int
		evalNS            int64
		snapNS, cypherNS  int64
	)
	for _, q := range qs {
		st := q.Stats()
		evals += st.Evaluations
		rows += st.RowsEmitted
		hits += st.SkippedByCache
		evalNS += st.EvalNanos
		snapNS += st.SnapshotNanos
		cypherNS += st.CypherNanos
		if len(qs) <= 4 {
			lat := q.EvalLatency()
			fmt.Printf("  [metrics] %s: evals=%d rows=%d window_elems=%d p50=%.2fms p95=%.2fms p99=%.2fms snapshot_ms=%.1f cypher_ms=%.1f cache_hits=%d\n",
				q.Name(), st.Evaluations, st.RowsEmitted, st.WindowElements,
				ms(lat.P50), ms(lat.P95), ms(lat.P99),
				ms(time.Duration(st.SnapshotNanos)), ms(time.Duration(st.CypherNanos)),
				st.SkippedByCache)
		}
	}
	fmt.Printf("  [metrics] total: queries=%d evals=%d rows=%d eval_ms=%.1f snapshot_ms=%.1f cypher_ms=%.1f cache_hits=%d\n",
		len(qs), evals, rows,
		ms(time.Duration(evalNS)), ms(time.Duration(snapNS)), ms(time.Duration(cypherNS)), hits)
}

// driveSeraph replays elems through an engine running the student-trick
// query with the given width/slide/op, returning total wall time and
// emitted rows.
func driveSeraph(elems []stream.Element, width, slide time.Duration, op ast.StreamOp) (time.Duration, int, error) {
	opStr := map[ast.StreamOp]string{
		ast.OpSnapshot:   "SNAPSHOT",
		ast.OpOnEntering: "ON ENTERING",
		ast.OpOnExiting:  "ON EXITING",
	}[op]
	src := fmt.Sprintf(`
REGISTER QUERY trick STARTING AT %s
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station),
        q = (b)-[:returnedAt|rentedAt*3..4]-(o:Station)
  WITHIN %s
  WITH r, s, q, relationships(q) AS rels,
       [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
  WHERE all(e IN rels WHERE
        e.user_id = r.user_id AND e.val_time > r.val_time AND
        (e.duration IS NULL OR e.duration < 20))
  EMIT r.user_id, s.id, r.val_time, hops
  %s EVERY %s
}`, elems[0].Time.Format("2006-01-02T15:04:05"), value.FormatDuration(width), opStr, value.FormatDuration(slide))

	e := engine.New()
	rows := 0
	_, err := e.RegisterSource(src, func(r engine.Result) { rows += r.Table.Len() })
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			return 0, 0, err
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			return 0, 0, err
		}
	}
	d := time.Since(start)
	dumpMetrics(e)
	return d, rows, nil
}

// mmElems generates micro-mobility batches. Stations scale with the
// rental rate so per-station degree (and hence variable-length pattern
// fan-out) stays roughly constant across rates.
func mmElems(batches, rentalsPerBatch int) []stream.Element {
	cfg := workload.DefaultMicroMobilityConfig()
	cfg.RentalsPerBatch = rentalsPerBatch
	cfg.Stations = 10 + rentalsPerBatch*3
	cfg.Vehicles = rentalsPerBatch * 20
	cfg.Users = rentalsPerBatch * 10
	return workload.NewMicroMobility(cfg).Batches(batches)
}

func b1Throughput() {
	batches := scaled(120, 24)
	header("rentals/batch", "events", "edges_total", "wall_ms", "edges_per_sec", "rows")
	for _, perBatch := range []int{5, 10, 20, 40, 80} {
		elems := mmElems(batches, perBatch)
		edges := 0
		for _, e := range elems {
			edges += e.Graph.NumRels()
		}
		d, rows, err := driveSeraph(elems, time.Hour, 5*time.Minute, ast.OpOnEntering)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d\t%d\t%d\t%.1f\t%.0f\t%d\n",
			perBatch, len(elems), edges, ms(d), float64(edges)/d.Seconds(), rows)
	}
}

func b2WindowWidth() {
	batches := scaled(120, 24)
	elems := mmElems(batches, 20)
	header("width", "evals", "wall_ms", "ms_per_eval", "rows")
	for _, width := range []time.Duration{5 * time.Minute, 15 * time.Minute, time.Hour, 2 * time.Hour} {
		d, rows, err := driveSeraph(elems, width, 5*time.Minute, ast.OpOnEntering)
		if err != nil {
			log.Fatal(err)
		}
		evals := batches
		fmt.Printf("%s\t%d\t%.1f\t%.2f\t%d\n",
			value.FormatDuration(width), evals, ms(d), ms(d)/float64(evals), rows)
	}
}

func b3Slide() {
	batches := scaled(120, 24)
	elems := mmElems(batches, 20)
	header("slide", "evals", "wall_ms", "rows")
	for _, slide := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		e := engine.New()
		evals := 0
		d, rows, err := driveSeraphCount(e, elems, time.Hour, slide, &evals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%d\t%.1f\t%d\n", value.FormatDuration(slide), evals, ms(d), rows)
	}
}

func driveSeraphCount(e *engine.Engine, elems []stream.Element, width, slide time.Duration, evals *int) (time.Duration, int, error) {
	src := fmt.Sprintf(`
REGISTER QUERY trick STARTING AT %s
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station),
        q = (b)-[:returnedAt|rentedAt*3..4]-(o:Station)
  WITHIN %s
  WITH r, s, q, relationships(q) AS rels,
       [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
  WHERE all(e IN rels WHERE
        e.user_id = r.user_id AND e.val_time > r.val_time AND
        (e.duration IS NULL OR e.duration < 20))
  EMIT r.user_id, s.id, r.val_time, hops
  ON ENTERING EVERY %s
}`, elems[0].Time.Format("2006-01-02T15:04:05"), value.FormatDuration(width), value.FormatDuration(slide))
	rows := 0
	_, err := e.RegisterSource(src, func(r engine.Result) {
		rows += r.Table.Len()
		*evals++
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			return 0, 0, err
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			return 0, 0, err
		}
	}
	d := time.Since(start)
	dumpMetrics(e)
	return d, rows, nil
}

func b4Emission() {
	batches := scaled(120, 24)
	elems := mmElems(batches, 20)
	header("operator", "wall_ms", "rows_emitted")
	for _, op := range []ast.StreamOp{ast.OpSnapshot, ast.OpOnEntering, ast.OpOnExiting} {
		d, rows, err := driveSeraph(elems, time.Hour, 5*time.Minute, op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%.1f\t%d\n", op, ms(d), rows)
	}
}

// b5Baseline is the headline comparison (the paper's Section 3.3
// argument): the Cypher-only polling workaround scans the full merged
// history at every poll, so its per-poll latency grows with total
// history size, while Seraph's per-evaluation cost stays bounded by
// window content. The info-need here is "rentals per user in the last
// hour", which both sides compute: Seraph via WITHIN PT1H, the baseline
// via an explicit val_time predicate it cannot use to prune the scan.
func b5Baseline() {
	batches := scaled(288, 48) // 24h vs 4h of 5-minute batches
	elems := mmElems(batches, 20)
	checkpoints := 6
	step := batches / checkpoints

	seraphSrc := fmt.Sprintf(`
REGISTER QUERY rentals_per_user STARTING AT %s
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT1H
  EMIT r.user_id AS user, count(*) AS rentals
  SNAPSHOT EVERY PT5M
}`, elems[0].Time.Format("2006-01-02T15:04:05"))
	e := engine.New()
	if _, err := e.RegisterSource(seraphSrc, nil); err != nil {
		log.Fatal(err)
	}

	baselineSrc := `
WITH datetime() - duration('PT1H') AS win_start, datetime() AS win_end
MATCH (b:Bike)-[r:rentedAt]->(s:Station)
WHERE win_start <= r.val_time <= win_end
RETURN r.user_id AS user, count(*) AS rentals`
	poller, err := baseline.New(baselineSrc, elems[0].Time, 5*time.Minute, nil)
	if err != nil {
		log.Fatal(err)
	}

	header("batch", "history_edges", "seraph_ms_per_eval", "baseline_ms_per_poll")
	for cp := 0; cp < checkpoints; cp++ {
		lo, hi := cp*step, (cp+1)*step
		chunk := elems[lo:hi]

		start := time.Now()
		for _, el := range chunk {
			if err := e.Push(el.Graph, el.Time); err != nil {
				log.Fatal(err)
			}
			if err := e.AdvanceTo(el.Time); err != nil {
				log.Fatal(err)
			}
		}
		seraphMS := ms(time.Since(start)) / float64(len(chunk))

		start = time.Now()
		for _, el := range chunk {
			if err := poller.Ingest(el.Graph, el.Time); err != nil {
				log.Fatal(err)
			}
			if err := poller.AdvanceTo(el.Time); err != nil {
				log.Fatal(err)
			}
		}
		baselineMS := ms(time.Since(start)) / float64(len(chunk))

		fmt.Printf("%d\t%d\t%.2f\t%.2f\n",
			hi, poller.Store().NumRels(), seraphMS, baselineMS)
	}
}

func b6VarLength() {
	// One window's worth of rental data: variable-length matching cost
	// grows sharply with the hop bound.
	elems := mmElems(12, 20)
	g, err := stream.Snapshot(elems)
	if err != nil {
		log.Fatal(err)
	}
	store := graphstore.FromGraph(g)
	header("max_hops", "matches", "wall_ms")
	for _, maxHops := range []int{1, 2, 3, 4, 5} {
		src := fmt.Sprintf(
			`MATCH q = (b:Bike)-[:returnedAt|rentedAt*1..%d]-(o:Station) RETURN count(*) AS n`, maxHops)
		q, err := parser.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		out, err := eval.EvalQuery(&eval.Ctx{Store: store}, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d\t%d\t%.1f\n", maxHops, out.Rows[0][0].Int(), ms(time.Since(start)))
	}
}

func b7Snapshot() {
	header("elements", "edges", "union_ms")
	for _, n := range []int{10, 100, 1000, scaled(5000, 2000)} {
		cfg := workload.DefaultMicroMobilityConfig()
		elems := workload.NewMicroMobility(cfg).Batches(n)
		start := time.Now()
		g, err := stream.Snapshot(elems)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d\t%d\t%.1f\n", n, g.NumRels(), ms(time.Since(start)))
	}
}

func b8ShortestPath() {
	header("racks", "anomalies", "wall_ms_per_eval")
	for _, racks := range []int{10, 50, 100, scaled(400, 200)} {
		cfg := workload.DefaultNetworkConfig()
		cfg.Racks = racks
		cfg.FailureRate = 0.05
		gen := workload.NewNetwork(cfg)
		elems := gen.Batches(scaled(10, 4))
		e := engine.New()
		rows := 0
		_, err := e.RegisterSource(workload.NetworkAnomalyQuery(cfg.Start), func(r engine.Result) {
			rows += r.Table.Len()
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for _, el := range elems {
			if err := e.Push(el.Graph, el.Time); err != nil {
				log.Fatal(err)
			}
			if err := e.AdvanceTo(el.Time); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%d\t%d\t%.1f\n", racks, rows, ms(time.Since(start))/float64(len(elems)))
	}
}

// b9Concurrent measures hosting many registered queries on one engine,
// sequentially (parallelism 1) and with the parallel evaluation
// scheduler (parallelism GOMAXPROCS), on both the micro-mobility and
// the network-monitoring workloads. On multi-core hardware the
// parallel column should approach a GOMAXPROCS-fold speedup once the
// query count exceeds the core count.
func b9Concurrent() {
	batches := scaled(48, 12)
	pars := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		pars = append(pars, g)
	}
	header("workload", "queries", "parallelism", "wall_ms", "ms_per_eval")
	for _, nq := range []int{1, 4, 16, 64} {
		for _, par := range pars {
			d, evals := b9Micromobility(batches, nq, par)
			fmt.Printf("micromobility\t%d\t%d\t%.1f\t%.2f\n", nq, par, ms(d), ms(d)/float64(evals))
		}
	}
	for _, nq := range []int{1, 4, 16} {
		for _, par := range pars {
			d, evals := b9Netmon(nq, par)
			fmt.Printf("netmon\t%d\t%d\t%.1f\t%.2f\n", nq, par, ms(d), ms(d)/float64(evals))
		}
	}
}

func b9Micromobility(batches, nq, par int) (time.Duration, int) {
	elems := mmElems(batches, 20)
	e := engine.New(engine.WithParallelism(par))
	var mu sync.Mutex
	evals := 0
	for i := 0; i < nq; i++ {
		src := fmt.Sprintf(`
REGISTER QUERY q%d STARTING AT %s
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT30M
  WHERE r.user_id %% %d = %d
  EMIT r.user_id, s.id
  ON ENTERING EVERY PT5M
}`, i, elems[0].Time.Format("2006-01-02T15:04:05"), nq, i)
		if _, err := e.RegisterSource(src, func(r engine.Result) {
			mu.Lock()
			evals++
			mu.Unlock()
		}); err != nil {
			log.Fatal(err)
		}
	}
	return replayTimed(e, elems), evals
}

func b9Netmon(nq, par int) (time.Duration, int) {
	cfg := workload.DefaultNetworkConfig()
	cfg.Racks = scaled(50, 20)
	cfg.FailureRate = 0.05
	elems := workload.NewNetwork(cfg).Batches(scaled(8, 4))
	e := engine.New(engine.WithParallelism(par))
	var mu sync.Mutex
	evals := 0
	for i := 0; i < nq; i++ {
		src := strings.Replace(workload.NetworkAnomalyQuery(cfg.Start),
			"network_anomalies", fmt.Sprintf("network_anomalies_%d", i), 1)
		if _, err := e.RegisterSource(src, func(r engine.Result) {
			mu.Lock()
			evals++
			mu.Unlock()
		}); err != nil {
			log.Fatal(err)
		}
	}
	return replayTimed(e, elems), evals
}

func replayTimed(e *engine.Engine, elems []stream.Element) time.Duration {
	start := time.Now()
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			log.Fatal(err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			log.Fatal(err)
		}
	}
	d := time.Since(start)
	dumpMetrics(e)
	return d
}

// b13Selectivity reproduces the BenchmarkSelectivePredicate ablation
// outside `go test`: the same windowed workload evaluated through the
// index-driven planner and through the scan baseline
// (engine.WithScanMatcher), swept across predicate selectivities. The
// pushed predicate is `u.bucket = 0` where bucket is drawn uniformly
// from [0, 1/selectivity), so selectivity is exactly the fraction of
// window nodes that match. -selectivity pins the sweep to one point;
// -json additionally writes the rows to a snapshot file (BENCH_pr3.json
// in the repo is one such run).
func b13Selectivity() {
	type b13Row struct {
		Selectivity   float64 `json:"selectivity"`
		WindowNodes   int     `json:"window_nodes"`
		Rows          int     `json:"rows_per_eval"`
		IndexedMS     float64 `json:"indexed_match_ms_per_eval"`
		ScanMS        float64 `json:"scan_match_ms_per_eval"`
		Speedup       float64 `json:"match_speedup"`
		IndexedWallMS float64 `json:"indexed_wall_ms_per_eval"`
		ScanWallMS    float64 `json:"scan_wall_ms_per_eval"`
	}
	sweep := []float64{0.001, 0.01, 0.1, 0.5}
	if selectivity > 0 {
		sweep = []float64{selectivity}
	}
	batches := 12
	perBatch := scaled(1000, 200)
	// The ablation targets pattern matching, so the headline column is
	// the Cypher-body share of evaluation time (Stats().CypherNanos);
	// wall time per instant includes window maintenance and snapshot
	// construction, which are identical in both modes.
	header("selectivity", "window_nodes", "rows_per_eval", "indexed_match_ms", "scan_match_ms", "speedup", "indexed_wall_ms", "scan_wall_ms")
	var out []b13Row
	for _, sel := range sweep {
		buckets := int(math.Max(1, math.Round(1/sel)))
		elems := b13Stream(batches, perBatch, buckets)
		src := fmt.Sprintf(`
REGISTER QUERY sel STARTING AT %s
{
  MATCH (u:User)-[:OWNS]->(d:Device)
  WITHIN PT1H
  WHERE u.bucket = 0
  EMIT u.uid AS uid, d.did AS did
  SNAPSHOT EVERY PT5M
}`, elems[0].Time.Format("2006-01-02T15:04:05"))
		var matchMS, wallMS [2]float64 // indexed, scan
		lastRows := 0
		for i, scan := range []bool{false, true} {
			// Incremental snapshots keep one rolling store alive across
			// instants, so the property indexes are maintained by the
			// window mutators instead of being rebuilt per evaluation.
			e := engine.New(engine.WithIncrementalSnapshots(true), engine.WithScanMatcher(scan))
			rows := 0
			if _, err := e.RegisterSource(src, func(r engine.Result) { rows = r.Table.Len() }); err != nil {
				log.Fatal(err)
			}
			d := replayTimed(e, elems)
			st := e.Queries()[0].Stats()
			matchMS[i] = ms(time.Duration(st.CypherNanos)) / float64(st.Evaluations)
			wallMS[i] = ms(d) / float64(batches)
			lastRows = rows
		}
		out = append(out, b13Row{
			Selectivity:   sel,
			WindowNodes:   batches * perBatch * 2,
			Rows:          lastRows,
			IndexedMS:     matchMS[0],
			ScanMS:        matchMS[1],
			Speedup:       matchMS[1] / matchMS[0],
			IndexedWallMS: wallMS[0],
			ScanWallMS:    wallMS[1],
		})
		fmt.Printf("%g\t%d\t%d\t%.2f\t%.2f\t%.1f\t%.2f\t%.2f\n",
			sel, batches*perBatch*2, lastRows, matchMS[0], matchMS[1], matchMS[1]/matchMS[0],
			wallMS[0], wallMS[1])
	}
	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B13",
			"description": "predicate selectivity sweep: indexed matcher vs scan baseline, ms per evaluation instant",
			"command":     "go run ./cmd/seraph-bench -exp B13 -json " + jsonOut,
			"rows":        out,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// b13Stream builds one batch every 5 minutes of User-[:OWNS]->Device
// pairs; each User carries a bucket property uniform in [0, buckets).
func b13Stream(batches, perBatch, buckets int) []stream.Element {
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var elems []stream.Element
	id := int64(1)
	for b := 0; b < batches; b++ {
		g := pg.New()
		for i := 0; i < perBatch; i++ {
			uid, did, rid := id, id+1, id+2
			id += 3
			g.AddNode(&value.Node{ID: uid, Labels: []string{"User"}, Props: map[string]value.Value{
				"bucket": value.NewInt(uid % int64(buckets)),
				"uid":    value.NewInt(uid),
			}})
			g.AddNode(&value.Node{ID: did, Labels: []string{"Device"}, Props: map[string]value.Value{
				"did": value.NewInt(did),
			}})
			if err := g.AddRel(&value.Relationship{ID: rid, StartID: uid, EndID: did, Type: "OWNS",
				Props: map[string]value.Value{}}); err != nil {
				log.Fatal(err)
			}
		}
		elems = append(elems, stream.Element{Graph: g, Time: start.Add(time.Duration(b) * 5 * time.Minute)})
	}
	return elems
}

// b14DeltaRatio measures per-instant evaluation cost as a function of
// the window delta ratio: the fraction of the window that enters and
// exits between consecutive evaluation instants. The window holds a
// fixed number of unique (User)-[:SESS]->(Svc) edges split into
// 1/ratio batches, one batch per slide, so every instant retires
// exactly one batch and admits one. Full evaluation (incremental
// windows, full re-match and re-diff) is compared against the
// delta-driven path (engine.WithDeltaEval); both modes must produce
// identical per-instant row counts or the run aborts, which makes
// `-exp B14 -quick` usable as a CI equivalence smoke. -json writes the
// rows to a snapshot file (BENCH_pr5.json in the repo is one such run).
// requireDeltaClean aborts the benchmark if any query registered on a
// delta-eval engine fell back to full evaluation or answered an
// instant non-incrementally. Checking every query (not a positional
// index) keeps the guard honest when an experiment registers several.
func requireDeltaClean(e *engine.Engine, exp string) {
	for _, q := range e.Queries() {
		st := q.Stats()
		// Bypassed instants (churn-ratio guard) still count as the delta
		// path answering the instant; only fallbacks and unaccounted
		// evaluations abort the run.
		if st.DeltaFallbacks != 0 || st.DeltaApplied+st.DeltaBypasses != st.Evaluations {
			log.Fatalf("%s: query %s fell back (%d applied + %d bypassed of %d evaluations, %d fallbacks)",
				exp, q.Name(), st.DeltaApplied, st.DeltaBypasses, st.Evaluations, st.DeltaFallbacks)
		}
	}
}

func b14DeltaRatio() {
	type b14Row struct {
		DeltaRatio  float64 `json:"delta_ratio"`
		WindowEdges int     `json:"window_edges"`
		Rows        int     `json:"rows_per_instant"`
		FullMS      float64 `json:"full_ms_per_instant"`
		DeltaMS     float64 `json:"delta_ms_per_instant"`
		Speedup     float64 `json:"speedup"`
		FullAllocs  float64 `json:"full_allocs_per_instant"`
		DeltaAllocs float64 `json:"delta_allocs_per_instant"`
		Bypasses    int     `json:"delta_bypasses"`
	}
	sweep := []float64{0.001, 0.01, 0.1, 0.3, 0.5}
	windowEdges := scaled(10000, 2000)
	measure := scaled(20, 8)
	slide := 5 * time.Second
	header("delta_ratio", "window_edges", "rows_per_instant", "full_ms", "delta_ms", "speedup", "full_allocs", "delta_allocs", "bypasses")
	var out []b14Row
	for _, ratio := range sweep {
		rounds := int(math.Max(1, math.Round(1/ratio)))
		perBatch := windowEdges / rounds
		if perBatch < 1 {
			perBatch = 1
		}
		elems := b14Stream(rounds, measure, perBatch, slide)
		src := fmt.Sprintf(`
REGISTER QUERY churn STARTING AT %s
{
  MATCH (u:User)-[r:SESS]->(d:Svc)
  WITHIN %s
  WHERE r.v > 0
  EMIT u.uid AS uid, d.did AS did
  ON ENTERING EVERY %s
}`, elems[rounds-1].Time.Format("2006-01-02T15:04:05"),
			value.FormatDuration(time.Duration(rounds)*slide), value.FormatDuration(slide))
		type instant struct {
			at time.Time
			n  int
		}
		var wallMS, allocs [2]float64 // full, delta
		var counts [2][]instant
		bypasses := 0
		for i, opts := range [][]engine.Option{
			{engine.WithIncrementalSnapshots(true)},
			{engine.WithDeltaEval(true)},
		} {
			e := engine.New(opts...)
			if _, err := e.RegisterSource(src, func(r engine.Result) {
				counts[i] = append(counts[i], instant{r.At, r.Table.Len()})
			}); err != nil {
				log.Fatal(err)
			}
			// Fill the window without evaluating, then absorb the first
			// instant (a full-window Δ⁺) outside the timed region.
			for _, el := range elems[:rounds] {
				if err := e.Push(el.Graph, el.Time); err != nil {
					log.Fatal(err)
				}
			}
			if err := e.AdvanceTo(elems[rounds-1].Time); err != nil {
				log.Fatal(err)
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			d := replayTimed(e, elems[rounds:])
			runtime.ReadMemStats(&m1)
			wallMS[i] = ms(d) / float64(measure)
			allocs[i] = float64(m1.Mallocs-m0.Mallocs) / float64(measure)
			if i == 1 {
				requireDeltaClean(e, "B14")
				for _, q := range e.Queries() {
					bypasses += q.Stats().DeltaBypasses
				}
			}
		}
		if len(counts[0]) != len(counts[1]) {
			log.Fatalf("B14 ratio %g: %d full instants vs %d delta instants",
				ratio, len(counts[0]), len(counts[1]))
		}
		rows := 0
		for j := range counts[0] {
			f, d := counts[0][j], counts[1][j]
			if !f.at.Equal(d.at) || f.n != d.n {
				log.Fatalf("B14 ratio %g instant %d: full %d rows at %s, delta %d rows at %s",
					ratio, j, f.n, f.at, d.n, d.at)
			}
			rows = f.n
		}
		out = append(out, b14Row{
			DeltaRatio:  ratio,
			WindowEdges: rounds * perBatch,
			Rows:        rows,
			FullMS:      wallMS[0],
			DeltaMS:     wallMS[1],
			Speedup:     wallMS[0] / wallMS[1],
			FullAllocs:  allocs[0],
			DeltaAllocs: allocs[1],
			Bypasses:    bypasses,
		})
		fmt.Printf("%g\t%d\t%d\t%.2f\t%.2f\t%.1f\t%.0f\t%.0f\t%d\n",
			ratio, rounds*perBatch, rows, wallMS[0], wallMS[1], wallMS[0]/wallMS[1],
			allocs[0], allocs[1], bypasses)
	}
	if allocGuard != "" {
		// The relative figure (delta allocs / full allocs at the same
		// churn) is scale-invariant, so a -quick CI run can be guarded
		// against the committed full-size snapshot.
		guardRel := func(rows []b14Row, src string) float64 {
			for _, r := range rows {
				if r.DeltaRatio == 0.01 && r.FullAllocs > 0 {
					return r.DeltaAllocs / r.FullAllocs
				}
			}
			log.Fatalf("B14 alloc guard: no 1%%-churn row with alloc data in %s", src)
			return 0
		}
		raw, err := os.ReadFile(allocGuard)
		if err != nil {
			log.Fatalf("B14 alloc guard: %v", err)
		}
		var snap struct {
			Rows []b14Row `json:"rows"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			log.Fatalf("B14 alloc guard: parse %s: %v", allocGuard, err)
		}
		cur, base := guardRel(out, "this run"), guardRel(snap.Rows, allocGuard)
		fmt.Printf("alloc guard: 1%%-churn delta/full allocs %.3f (snapshot %.3f)\n", cur, base)
		if cur > 2*base {
			log.Fatalf("B14 alloc guard: 1%%-churn relative allocs regressed %.1fx vs %s (%.3f > 2 x %.3f)",
				cur/base, allocGuard, cur, base)
		}
	}
	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B14",
			"description": "delta-ratio sweep: delta-driven evaluation vs full re-evaluation, wall ms per evaluation instant (ON ENTERING)",
			"command":     "go run ./cmd/seraph-bench -exp B14 -json " + jsonOut,
			"rows":        out,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// b14Stream builds one batch per slide of unique User-[:SESS]->Svc
// edges; with a window of rounds×slide, each instant sees exactly one
// batch enter and one exit.
func b14Stream(rounds, extra, perBatch int, slide time.Duration) []stream.Element {
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var elems []stream.Element
	id := int64(1)
	for b := 0; b < rounds+extra; b++ {
		g := pg.New()
		for i := 0; i < perBatch; i++ {
			uid, did, rid := id, id+1, id+2
			id += 3
			g.AddNode(&value.Node{ID: uid, Labels: []string{"User"}, Props: map[string]value.Value{
				"uid": value.NewInt(uid)}})
			g.AddNode(&value.Node{ID: did, Labels: []string{"Svc"}, Props: map[string]value.Value{
				"did": value.NewInt(did)}})
			if err := g.AddRel(&value.Relationship{ID: rid, StartID: uid, EndID: did, Type: "SESS",
				Props: map[string]value.Value{"v": value.NewInt(1 + uid%5)}}); err != nil {
				log.Fatal(err)
			}
		}
		elems = append(elems, stream.Element{Graph: g, Time: start.Add(time.Duration(b) * slide)})
	}
	return elems
}

// b15WorkloadDelta validates and times delta-driven evaluation on the
// three reference workload scenarios (micromobility fraud, network
// anomaly shortestPath, POLE crime) and on the newly maintained query
// shapes (ORDER BY/LIMIT, float sum, bounded var-length, shortestPath)
// at 1% window churn. Every case runs full (incremental windows) and
// delta side by side; the run aborts on any per-instant row-count
// divergence, any delta fallback, or any instant answered
// non-incrementally, which makes `-exp B15 -quick` a CI equivalence
// smoke for seraph_delta_fallback_total == 0. -json writes the rows to
// a snapshot file (BENCH_pr6.json in the repo is one such run).
func b15WorkloadDelta() {
	type b15Row struct {
		Case     string  `json:"case"`
		Kind     string  `json:"kind"`
		Instants int     `json:"instants"`
		Rows     int     `json:"rows_total"`
		FullMS   float64 `json:"full_ms_per_instant"`
		DeltaMS  float64 `json:"delta_ms_per_instant"`
		Speedup  float64 `json:"speedup"`
	}
	header("case", "kind", "instants", "rows_total", "full_ms", "delta_ms", "speedup")
	var out []b15Row

	// run replays warm (untimed: window fill and the first full-window
	// Δ⁺) then timed under both engines, requires identical per-instant
	// (query, instant, rows) sequences and a clean delta run, and
	// records per-instant wall time over the timed region.
	run := func(name, kind string, srcs []string, warm, timed []stream.Element) {
		type instant struct {
			q  string
			at time.Time
			n  int
		}
		var wallMS [2]float64
		var instants [2]int
		var rowsTotal [2]int
		var sigs [2][]instant
		for i, opts := range [][]engine.Option{
			{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true)},
			{engine.WithParallelism(1), engine.WithDeltaEval(true)},
		} {
			e := engine.New(opts...)
			for _, src := range srcs {
				if _, err := e.RegisterSource(src, func(r engine.Result) {
					sigs[i] = append(sigs[i], instant{r.Query, r.At, r.Table.Len()})
					rowsTotal[i] += r.Table.Len()
				}); err != nil {
					log.Fatal(err)
				}
			}
			for _, el := range warm {
				if err := e.Push(el.Graph, el.Time); err != nil {
					log.Fatal(err)
				}
			}
			if len(warm) > 0 {
				if err := e.AdvanceTo(warm[len(warm)-1].Time); err != nil {
					log.Fatal(err)
				}
			}
			evalsBefore := 0
			for _, q := range e.Queries() {
				evalsBefore += q.Stats().Evaluations
			}
			d := replayTimed(e, timed)
			for _, q := range e.Queries() {
				instants[i] += q.Stats().Evaluations
			}
			instants[i] -= evalsBefore
			if instants[i] == 0 {
				log.Fatalf("B15 %s: no timed evaluation instants", name)
			}
			wallMS[i] = ms(d) / float64(instants[i])
			if i == 1 {
				requireDeltaClean(e, "B15 "+name)
			}
		}
		if len(sigs[0]) != len(sigs[1]) {
			log.Fatalf("B15 %s: %d full results vs %d delta results", name, len(sigs[0]), len(sigs[1]))
		}
		for j := range sigs[0] {
			f, d := sigs[0][j], sigs[1][j]
			if f.q != d.q || !f.at.Equal(d.at) || f.n != d.n {
				log.Fatalf("B15 %s result %d: full %s %d rows at %s, delta %s %d rows at %s",
					name, j, f.q, f.n, f.at, d.q, d.n, d.at)
			}
		}
		out = append(out, b15Row{
			Case: name, Kind: kind, Instants: instants[1], Rows: rowsTotal[1],
			FullMS: wallMS[0], DeltaMS: wallMS[1], Speedup: wallMS[0] / wallMS[1],
		})
		fmt.Printf("%s\t%s\t%d\t%d\t%.2f\t%.2f\t%.1f\n",
			name, kind, instants[1], rowsTotal[1], wallMS[0], wallMS[1], wallMS[0]/wallMS[1])
	}

	// Part 1: the three reference scenarios, end to end.
	{
		cfg := workload.DefaultMicroMobilityConfig()
		cfg.FraudRatio = 0.5
		cfg.RentalsPerBatch = scaled(20, 10)
		cfg.Stations = 60
		elems := workload.NewMicroMobility(cfg).Batches(scaled(24, 12))
		run("micromobility", "scenario",
			[]string{workload.StudentTrickQueryAt(cfg.Start)}, nil, elems)
	}
	{
		cfg := workload.DefaultNetworkConfig()
		cfg.Racks = scaled(12, 6)
		cfg.FailureRate = 0.3 // re-sampled per tick: route churn every instant
		elems := workload.NewNetwork(cfg).Batches(scaled(20, 6))
		run("netmon", "scenario",
			[]string{workload.NetworkAnomalyQuery(cfg.Start)}, nil, elems)
	}
	{
		cfg := workload.DefaultPOLEConfig()
		cfg.CrimeRate = 1.0
		elems := workload.NewPOLE(cfg).Batches(scaled(24, 8))
		run("pole", "scenario",
			[]string{workload.SuspectsQuery(cfg.Start), workload.StolenObjectsQuery(cfg.Start)},
			nil, elems)
	}

	// Part 2: the newly maintained shapes at 1% churn — 100 batches in
	// the window, one entering and one exiting per instant.
	rounds := 100
	measure := scaled(20, 8)
	windowEdges := scaled(10000, 2000)
	perBatch := windowEdges / rounds
	slide := 5 * time.Second
	elems := b14Stream(rounds, measure, perBatch, slide)
	start := elems[rounds-1].Time.Format("2006-01-02T15:04:05")
	within := value.FormatDuration(time.Duration(rounds) * slide)
	every := value.FormatDuration(slide)
	shapes := []struct{ name, body string }{
		{"orderby-limit", `MATCH (u:User)-[r:SESS]->(d:Svc) WITHIN %s
  EMIT u.uid AS uid, r.v AS v ORDER BY v DESC, uid LIMIT 10 ON ENTERING EVERY %s`},
		{"float-sum", `MATCH (u:User)-[r:SESS]->(d:Svc) WITHIN %s
  EMIT count(*) AS n, sum(r.v * 0.25) AS fs SNAPSHOT EVERY %s`},
		{"var-length", `MATCH (u:User)-[:SESS*1..2]->(d:Svc) WITHIN %s
  EMIT u.uid AS uid, d.did AS did ON ENTERING EVERY %s`},
		{"shortest-path", `MATCH p = shortestPath((u:User)-[:SESS*..2]->(d:Svc)) WITHIN %s
  EMIT u.uid AS uid, length(p) AS hops ON ENTERING EVERY %s`},
	}
	for _, sh := range shapes {
		src := fmt.Sprintf("REGISTER QUERY %s STARTING AT %s\n{ %s }",
			strings.ReplaceAll(sh.name, "-", "_"), start, fmt.Sprintf(sh.body, within, every))
		run(sh.name, "shape@1%churn", []string{src}, elems[:rounds], elems[rounds:])
	}

	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B15",
			"description": "delta-driven vs full evaluation: reference workload scenarios and newly maintained shapes (ORDER BY/LIMIT, float sum, var-length, shortestPath) at 1% window churn; zero fallbacks enforced",
			"command":     "go run ./cmd/seraph-bench -exp B15 -json " + jsonOut,
			"rows":        out,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// b16MQO measures multi-query optimization (engine.WithSharedEval):
// nQueries registered variants spread over nPatterns distinct canonical
// fingerprints — each pattern has one MATCH/window shape and the
// variants differ only in a parameterized residual (WHERE r.v > $x), so
// the shared engine forms exactly nPatterns evaluation groups and
// performs nPatterns pattern evaluations per instant where the unshared
// engine performs nQueries. Three engines replay the same element
// sequence: unshared, shared, and shared+delta. The run aborts unless
// every query's per-instant result bag (sorted row multiset) is
// identical across all three, which makes `-exp B16 -quick` a CI
// correctness smoke for the MQO layer. -json writes the rows to a
// snapshot file (BENCH_pr8.json in the repo is one such run).
func b16MQO() {
	type b16Row struct {
		Mode     string  `json:"mode"`
		Queries  int     `json:"queries"`
		Patterns int     `json:"patterns"`
		Groups   int     `json:"groups"`
		Instants int     `json:"instants"`
		Rows     int     `json:"rows_total"`
		MS       float64 `json:"ms_per_instant"`
		Speedup  float64 `json:"speedup_vs_unshared"`
	}
	nPatterns := scaled(32, 8)
	nQueries := scaled(1000, 32)
	rounds := scaled(20, 8) // batches filling the window
	measure := scaled(10, 4)
	perType := scaled(8, 4) // edges per pattern type per batch
	slide := 5 * time.Second

	elems := b16Stream(rounds, measure, perType, nPatterns, slide)
	startAt := elems[rounds-1].Time.Format("2006-01-02T15:04:05")
	within := value.FormatDuration(time.Duration(rounds) * slide)
	every := value.FormatDuration(slide)

	// Sorted-row bag signature: fan-out order through a shared group is
	// not the same as per-query evaluation order, so the oracle must be
	// order-insensitive within an instant.
	bagSig := func(t *eval.Table) string {
		rows := make([]string, len(t.Rows))
		for i, row := range t.Rows {
			var b strings.Builder
			for _, c := range row {
				b.WriteString(c.String())
				b.WriteByte('\x1f')
			}
			rows[i] = b.String()
		}
		sort.Strings(rows)
		return strings.Join(rows, "\x1e")
	}

	legs := []struct {
		name string
		opts []engine.Option
	}{
		{"unshared", []engine.Option{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true)}},
		{"shared", []engine.Option{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true), engine.WithSharedEval(true)}},
		{"shared+delta", []engine.Option{engine.WithParallelism(1), engine.WithSharedEval(true), engine.WithDeltaEval(true)}},
	}
	header("mode", "queries", "patterns", "groups", "instants", "rows_total", "ms_per_instant", "speedup")
	var out []b16Row
	bags := make([]map[string]string, len(legs))
	for i, leg := range legs {
		e := engine.New(leg.opts...)
		bag := make(map[string]string)
		bags[i] = bag
		rowsTotal := 0
		for q := 0; q < nQueries; q++ {
			p := q % nPatterns
			threshold := (q / nPatterns) % 8
			src := fmt.Sprintf(`REGISTER QUERY q%04d STARTING AT %s
{
  MATCH (u:User)-[r:T%d]->(d:Svc)
  WITHIN %s
  WHERE r.v > $x
  EMIT u.uid AS uid, r.v AS v
  ON ENTERING EVERY %s
}`, q, startAt, p, within, every)
			reg, err := parser.ParseRegistration(src)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := e.RegisterWithParams(reg, func(r engine.Result) {
				key := r.Query + "@" + r.At.Format(time.RFC3339)
				if prev, dup := bag[key]; dup {
					bag[key] = prev + "\x1d" + bagSig(r.Table)
				} else {
					bag[key] = bagSig(r.Table)
				}
				rowsTotal += r.Table.Len()
			}, map[string]value.Value{"x": value.NewInt(int64(threshold))}); err != nil {
				log.Fatal(err)
			}
		}
		// Fill the window and absorb the first instant (a full-window
		// Δ⁺ and, for shared groups, generation start) untimed.
		for _, el := range elems[:rounds] {
			if err := e.Push(el.Graph, el.Time); err != nil {
				log.Fatal(err)
			}
		}
		if err := e.AdvanceTo(elems[rounds-1].Time); err != nil {
			log.Fatal(err)
		}
		groups := len(e.SharedGroups())
		if i > 0 && groups != nPatterns {
			log.Fatalf("B16 %s: %d shared groups, want %d (one per distinct pattern)",
				leg.name, groups, nPatterns)
		}
		d := replayTimed(e, elems[rounds:rounds+measure])
		wall := ms(d) / float64(measure)
		speedup := 1.0
		if len(out) > 0 {
			speedup = out[0].MS / wall
		}
		out = append(out, b16Row{
			Mode: leg.name, Queries: nQueries, Patterns: nPatterns, Groups: groups,
			Instants: measure, Rows: rowsTotal, MS: wall, Speedup: speedup,
		})
		fmt.Printf("%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.1f\n",
			leg.name, nQueries, nPatterns, groups, measure, rowsTotal, wall, speedup)
	}
	// Per-query bag oracle: every (query, instant) must carry an
	// identical sorted row multiset in all three modes.
	for i := 1; i < len(legs); i++ {
		if len(bags[i]) != len(bags[0]) {
			log.Fatalf("B16 %s: %d result instants vs %d unshared", legs[i].name, len(bags[i]), len(bags[0]))
		}
		for key, want := range bags[0] {
			got, ok := bags[i][key]
			if !ok {
				log.Fatalf("B16 %s: missing result %s", legs[i].name, key)
			}
			if got != want {
				log.Fatalf("B16 %s: result bag diverges from unshared at %s", legs[i].name, key)
			}
		}
	}
	fmt.Printf("oracle: %d (query, instant) bags identical across all modes\n", len(bags[0]))
	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B16",
			"description": "multi-query optimization: shared vs unshared evaluation of query variants grouped by canonical fingerprint; per-query result bags verified identical",
			"command":     "go run ./cmd/seraph-bench -exp B16 -json " + jsonOut,
			"rows":        out,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// b16Stream builds one batch per slide holding perType unique
// User-[:T<p>]->Svc edges for each of nPatterns relationship types;
// r.v cycles 1..10 so the parameterized residual thresholds of B16
// select distinct subsets per query variant.
func b16Stream(rounds, extra, perType, nPatterns int, slide time.Duration) []stream.Element {
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var elems []stream.Element
	id := int64(1)
	for b := 0; b < rounds+extra; b++ {
		g := pg.New()
		for p := 0; p < nPatterns; p++ {
			for i := 0; i < perType; i++ {
				uid, did, rid := id, id+1, id+2
				id += 3
				g.AddNode(&value.Node{ID: uid, Labels: []string{"User"}, Props: map[string]value.Value{
					"uid": value.NewInt(uid)}})
				g.AddNode(&value.Node{ID: did, Labels: []string{"Svc"}, Props: map[string]value.Value{
					"did": value.NewInt(did)}})
				if err := g.AddRel(&value.Relationship{ID: rid, StartID: uid, EndID: did,
					Type:  fmt.Sprintf("T%d", p),
					Props: map[string]value.Value{"v": value.NewInt(1 + rid%10)}}); err != nil {
					log.Fatal(err)
				}
			}
		}
		elems = append(elems, stream.Element{Graph: g, Time: start.Add(time.Duration(b) * slide)})
	}
	return elems
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
