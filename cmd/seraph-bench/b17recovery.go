package main

// B17: crash-recovery time vs durable log length. The engine's restart
// cost model is "last checkpoint + replay-from-offset" (see DESIGN.md
// "Durability & recovery"): without checkpoints a restart replays the
// whole retained log through the connector and re-fires every
// evaluation instant; with checkpoints it replays only the suffix past
// the manifest offsets. This experiment builds a durable directory of
// varying log lengths under three checkpoint cadences (none, coarse,
// fine), closes it without a final checkpoint — the worst honest case,
// a crash right before the next save — and times a cold reopen until
// ingestion has fully caught up.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"seraph/internal/engine"
	"seraph/internal/ingest"
	"seraph/internal/pg"
	"seraph/internal/queue"
	"seraph/internal/value"
	"seraph/internal/wal"
)

const b17Topic = "events"

const b17Src = `REGISTER QUERY b17 STARTING AT 2026-07-06T10:00:00
{ MATCH (s:Sensor)-[r:READ]->(z:Zone) WITHIN PT30S
  WHERE r.v > 10
  EMIT s.name AS sensor, r.v AS v SNAPSHOT EVERY PT5S }`

type b17Event struct {
	payload []byte
	ts      time.Time
}

// b17Stream: one sensor reading per second, five sensors round-robin.
func b17Stream(n int) []b17Event {
	base := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	evs := make([]b17Event, n)
	for i := range evs {
		ts := base.Add(time.Duration(i+1) * time.Second)
		sid := int64(1 + i%5)
		g := pg.New()
		g.AddNode(&value.Node{ID: sid, Labels: []string{"Sensor"}, Props: map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("s%d", sid))}})
		g.AddNode(&value.Node{ID: 100, Labels: []string{"Zone"}, Props: map[string]value.Value{}})
		if err := g.AddRel(&value.Relationship{ID: int64(1000 + i), StartID: sid, EndID: 100,
			Type: "READ", Props: map[string]value.Value{"v": value.NewInt(int64(i % 40))}}); err != nil {
			log.Fatal(err)
		}
		payload, err := ingest.Encode(g, ts)
		if err != nil {
			log.Fatal(err)
		}
		evs[i] = b17Event{payload: payload, ts: ts}
	}
	return evs
}

// b17Build ingests the stream into a fresh durable directory,
// checkpointing every `every` delivered events (0 = never), and closes
// gracefully WITHOUT a final checkpoint so recovery always has a log
// suffix to replay.
func b17Build(dir string, events []b17Event, every int) {
	b, err := queue.OpenDurable(filepath.Join(dir, "queue"),
		queue.DurableConfig{Fsync: wal.FsyncNever}) // isolate replay cost, not append fsyncs
	if err != nil {
		log.Fatal(err)
	}
	if err := b.CreateTopicWith(b17Topic, queue.TopicConfig{Partitions: 1}); err != nil {
		log.Fatal(err)
	}
	eng := engine.New(engine.WithParallelism(1))
	if _, err := eng.RegisterSource(b17Src, nil); err != nil {
		log.Fatal(err)
	}
	conn, err := ingest.NewConnector(b, b17Topic, eng.Push)
	if err != nil {
		log.Fatal(err)
	}
	ck, err := eng.NewCheckpointer(filepath.Join(dir, "checkpoints"))
	if err != nil {
		log.Fatal(err)
	}
	delivered, lastCk := 0, 0
	for _, ev := range events {
		if _, err := b.Produce(b17Topic, "", ev.payload, ev.ts); err != nil {
			log.Fatal(err)
		}
		n, err := conn.Poll(64)
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			continue
		}
		if err := eng.AdvanceTo(eng.Now()); err != nil {
			log.Fatal(err)
		}
		delivered += n
		if every > 0 && delivered-lastCk >= every {
			if err := b.SyncWAL(); err != nil {
				log.Fatal(err)
			}
			if err := ck.Save(map[string][]int64{b17Topic: conn.AppliedOffsets()}); err != nil {
				log.Fatal(err)
			}
			lastCk = delivered
		}
	}
	if err := b.CloseDurable(); err != nil {
		log.Fatal(err)
	}
}

// b17Recover reopens the directory cold and drives it until ingestion
// has caught up with the log, returning the wall time and how many
// records the connector had to replay.
func b17Recover(dir string) (time.Duration, int64, int) {
	t0 := time.Now()
	b, err := queue.OpenDurable(filepath.Join(dir, "queue"),
		queue.DurableConfig{Fsync: wal.FsyncNever})
	if err != nil {
		log.Fatal(err)
	}
	eng, info, err := engine.Recover(filepath.Join(dir, "checkpoints"), nil, engine.WithParallelism(1))
	var applied []int64
	seq := 0
	switch {
	case err == nil:
		applied = info.Offsets[b17Topic]
		seq = info.Seq
	case err == engine.ErrNoCheckpoint:
		eng = engine.New(engine.WithParallelism(1))
		if _, rerr := eng.RegisterSource(b17Src, nil); rerr != nil {
			log.Fatal(rerr)
		}
	default:
		log.Fatal(err)
	}
	connOpts := []ingest.ConnectorOption{}
	if applied != nil {
		connOpts = append(connOpts, ingest.WithAppliedOffsets(applied))
	}
	conn, err := ingest.NewConnector(b, b17Topic, eng.Push, connOpts...)
	if err != nil {
		log.Fatal(err)
	}
	var replayed int64
	for {
		n, err := conn.Poll(1024)
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			break
		}
		replayed += int64(n)
		if err := eng.AdvanceTo(eng.Now()); err != nil {
			log.Fatal(err)
		}
	}
	d := time.Since(t0)
	if err := b.CloseDurable(); err != nil {
		log.Fatal(err)
	}
	return d, replayed, seq
}

func b17Recovery() {
	type b17Row struct {
		Cadence    string  `json:"cadence"`
		Every      int     `json:"checkpoint_every"`
		Events     int     `json:"events"`
		Replayed   int64   `json:"records_replayed"`
		Seq        int     `json:"checkpoint_seq"`
		RecoveryMS float64 `json:"recovery_ms"`
		Speedup    float64 `json:"speedup_vs_none"`
	}
	cadences := []struct {
		name  string
		every int
	}{
		{"none", 0},
		{"coarse", 256},
		{"fine", 64},
	}
	sizes := []int{scaled(2000, 300), scaled(8000, 600)}

	header("cadence", "ckpt_every", "events", "replayed", "ckpt_seq", "recovery_ms", "speedup")
	var out []b17Row
	for _, n := range sizes {
		events := b17Stream(n)
		var baseMS float64
		for _, c := range cadences {
			dir, err := os.MkdirTemp("", "seraph-b17-*")
			if err != nil {
				log.Fatal(err)
			}
			b17Build(dir, events, c.every)
			d, replayed, seq := b17Recover(dir)
			os.RemoveAll(dir)
			// Replay plus checkpoint watermark must cover the whole log:
			// otherwise the recovery run silently skipped records.
			covered := replayed
			if c.every > 0 && seq > 0 {
				covered = int64(n) // watermark + suffix; suffix counted below
				if replayed >= int64(n) {
					log.Fatalf("B17 %s/%d: replayed %d of %d — checkpoint offsets ignored", c.name, n, replayed, n)
				}
			} else if covered != int64(n) {
				log.Fatalf("B17 %s/%d: replayed %d of %d records", c.name, n, replayed, n)
			}
			wall := ms(d)
			if c.every == 0 {
				baseMS = wall
			}
			speedup := 1.0
			if baseMS > 0 {
				speedup = baseMS / wall
			}
			out = append(out, b17Row{
				Cadence: c.name, Every: c.every, Events: n,
				Replayed: replayed, Seq: seq, RecoveryMS: wall, Speedup: speedup,
			})
			fmt.Printf("%s\t%d\t%d\t%d\t%d\t%.2f\t%.1f\n",
				c.name, c.every, n, replayed, seq, wall, speedup)
		}
	}
	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B17",
			"description": "cold-restart recovery time vs durable log length under three checkpoint cadences; restart cost = last checkpoint + replay-from-offset",
			"command":     "go run ./cmd/seraph-bench -exp B17 -json " + jsonOut,
			"rows":        out,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}
