package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"encoding/json"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/parser"
	"seraph/internal/pg"
	"seraph/internal/stream"
	"seraph/internal/value"
)

// b18Hierarchy measures the MQO sharing hierarchy (PR 10) against
// PR 8's equality-only grouping on a workload equality cannot collapse:
//
//   - nFam dense 2-hop pattern families, each registered at six window
//     widths (10–60 s on a 5 s slide) with parameterized residual
//     variants — equality keys one group per (family, width) and runs
//     the quadratic-in-width join once per width, the hierarchy keys
//     one width super-group per family, runs the join once at the
//     widest window and derives the narrow members by containment
//     re-validation;
//   - per family, 3-hop child variants whose first two comma-separated
//     parts equal the family's whole pattern — the hierarchy seeds the
//     child chassis from the parent's binding table instead of
//     re-running the dense join;
//   - one staggered mid-run registration per family — equality spawns
//     a parallel chassis generation, the hierarchy merges it into the
//     running super-group with a single catch-up backfill.
//
// Three engines (unshared, shared = WithSharedHierarchy(false),
// hierarchical) replay the same element sequence with delta evaluation
// off. The run aborts unless every (query, instant) sorted-row bag is
// identical across all modes — late queries are compared only after
// their steady-state horizon, because a merged late joiner
// intentionally adopts the chassis history while an unshared late
// registrant's window fills from registration; the two agree once
// every pre-registration element has expired from the widest window —
// and unless seraph_delta_fallback_total stayed zero everywhere.
// -json writes the rows to a snapshot (BENCH_pr10.json in the repo).
func b18Hierarchy() {
	type b18Row struct {
		Mode      string  `json:"mode"`
		Queries   int     `json:"queries"`
		Families  int     `json:"families"`
		Groups    int     `json:"groups"`
		Instants  int     `json:"instants"`
		Rows      int     `json:"rows_total"`
		MS        float64 `json:"ms_per_instant"`
		VsUnshare float64 `json:"speedup_vs_unshared"`
		VsShared  float64 `json:"speedup_vs_shared"`
	}
	nFam := scaled(3, 2)
	variants := scaled(2, 2)  // residual variants per (family, width)
	childVar := scaled(3, 2)  // residual variants per family's 3-hop child
	rounds := 12              // batches filling the widest (60 s) window
	measure := scaled(24, 16) // timed instants (> rounds, so late steady state is reached)
	perType := scaled(24, 4)  // edge pairs per family per batch
	slide := 5 * time.Second
	widths := []string{"PT10S", "PT15S", "PT20S", "PT25S", "PT30S", "PT35S",
		"PT40S", "PT45S", "PT50S", "PT55S", "PT60S"}
	if quick {
		widths = []string{"PT20S", "PT40S", "PT60S"}
	}

	elems := b18Stream(rounds, measure, perType, nFam, slide)
	startAt := elems[rounds-1].Time.Format("2006-01-02T15:04:05")
	// Late queries are registered at elems[rounds-1].Time; their
	// divergence-by-design horizon ends once every pre-registration
	// element has expired from the widest (60 s) window.
	lateSteady := elems[rounds-1].Time.Add(60 * time.Second)

	bagSig := func(t *eval.Table) string {
		rows := make([]string, len(t.Rows))
		for i, row := range t.Rows {
			var b strings.Builder
			for _, c := range row {
				b.WriteString(c.String())
				b.WriteByte('\x1f')
			}
			rows[i] = b.String()
		}
		sort.Strings(rows)
		return strings.Join(rows, "\x1e")
	}

	// The family pattern is a dense 2-hop join through a small pool of
	// Svc nodes, so match cost grows quadratically with window width
	// while snapshot cost (paid identically by every shared mode) grows
	// only linearly — the hierarchy's width and seeding savings are on
	// the match side. The core conjunct r.v > s.v is shareable (two
	// pattern vars) and selective (~1% of candidate pairs), keeping
	// fan-out rows modest.
	parentSrc := func(name string, fam int, width string) string {
		return fmt.Sprintf(`REGISTER QUERY %s STARTING AT %s
{
  MATCH (u:User)-[r:T%d]->(d:Svc), (d)-[s:G%d]->(w:Ext)
  WITHIN %s
  WHERE r.v > s.v AND r.v > $x
  EMIT u.uid AS uid, w.wid AS wid
  ON ENTERING EVERY PT5S
}`, name, startAt, fam, fam, width)
	}
	childSrc := func(name string, fam int) string {
		return fmt.Sprintf(`REGISTER QUERY %s STARTING AT %s
{
  MATCH (u:User)-[r:T%d]->(d:Svc), (d)-[s:G%d]->(w:Ext), (w)-[x:H%d]->(z:Org)
  WITHIN PT60S
  WHERE r.v > s.v AND r.v > $x
  EMIT u.uid AS uid, z.zid AS zid
  ON ENTERING EVERY PT5S
}`, name, startAt, fam, fam, fam)
	}

	legs := []struct {
		name   string
		groups int // expected shared groups before the late registrations
		opts   []engine.Option
	}{
		{"unshared", 0, []engine.Option{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true)}},
		{"shared", nFam*len(widths) + nFam, []engine.Option{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true),
			engine.WithSharedEval(true), engine.WithSharedHierarchy(false)}},
		{"hierarchical", 2 * nFam, []engine.Option{engine.WithParallelism(1), engine.WithIncrementalSnapshots(true),
			engine.WithSharedEval(true)}},
	}
	header("mode", "queries", "families", "groups", "instants", "rows_total", "ms_per_instant", "vs_unshared", "vs_shared")
	var out []b18Row
	bags := make([]map[string]string, len(legs))
	for i, leg := range legs {
		e := engine.New(leg.opts...)
		bag := make(map[string]string)
		bags[i] = bag
		rowsTotal := 0
		var handles []*engine.Query
		register := func(src string, threshold int) {
			reg, err := parser.ParseRegistration(src)
			if err != nil {
				log.Fatal(err)
			}
			q, err := e.RegisterWithParams(reg, func(r engine.Result) {
				key := r.Query + "@" + r.At.Format(time.RFC3339)
				if prev, dup := bag[key]; dup {
					bag[key] = prev + "\x1d" + bagSig(r.Table)
				} else {
					bag[key] = bagSig(r.Table)
				}
				rowsTotal += r.Table.Len()
			}, map[string]value.Value{"x": value.NewInt(int64(threshold))})
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, q)
		}
		// Parent families first (their groups get the lower chassis ids,
		// so the sequential scheduler evaluates seeding parents before
		// their children), then the 2-hop children.
		nQueries := 0
		for fam := 0; fam < nFam; fam++ {
			for wi, w := range widths {
				for v := 0; v < variants; v++ {
					register(parentSrc(fmt.Sprintf("q%d_w%d_v%02d", fam, wi, v), fam, w), v%8)
					nQueries++
				}
			}
		}
		for fam := 0; fam < nFam; fam++ {
			for v := 0; v < childVar; v++ {
				register(childSrc(fmt.Sprintf("c%d_v%02d", fam, v), fam), v%8)
				nQueries++
			}
		}
		// Fill the widest window and absorb the first instant untimed.
		for _, el := range elems[:rounds] {
			if err := e.Push(el.Graph, el.Time); err != nil {
				log.Fatal(err)
			}
		}
		if err := e.AdvanceTo(elems[rounds-1].Time); err != nil {
			log.Fatal(err)
		}
		if groups := len(e.SharedGroups()); groups != leg.groups {
			log.Fatalf("B18 %s: %d shared groups, want %d", leg.name, groups, leg.groups)
		}
		// Staggered mid-run registrations: one per family, against a
		// group that has been running for a full window.
		for fam := 0; fam < nFam; fam++ {
			register(parentSrc(fmt.Sprintf("late%d", fam), fam, "PT60S"), fam%8)
			nQueries++
		}
		d := replayTimed(e, elems[rounds:rounds+measure])
		groups := len(e.SharedGroups())
		for _, q := range handles {
			if fb := q.Stats().DeltaFallbacks; fb != 0 {
				log.Fatalf("B18 %s: query %s has %d delta fallbacks, want 0 (delta eval is off)", leg.name, q.Name(), fb)
			}
		}
		wall := ms(d) / float64(measure)
		vsUnshared, vsShared := 1.0, 0.0
		if len(out) > 0 {
			vsUnshared = out[0].MS / wall
		}
		if len(out) == 1 {
			vsShared = 1.0
		} else if len(out) > 1 {
			vsShared = out[1].MS / wall
		}
		out = append(out, b18Row{
			Mode: leg.name, Queries: nQueries, Families: nFam, Groups: groups,
			Instants: measure, Rows: rowsTotal, MS: wall, VsUnshare: vsUnshared, VsShared: vsShared,
		})
		fmt.Printf("%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.1f\t%.1f\n",
			leg.name, nQueries, nFam, groups, measure, rowsTotal, wall, vsUnshared, vsShared)
	}
	// Per-(query, instant) bag oracle across all three modes. Late
	// queries are compared only at steady-state instants: a merged late
	// joiner intentionally adopts the chassis history (it sees the
	// pre-registration window an unshared late registrant's
	// from-registration buffer lacks), so the modes agree only once
	// every pre-registration element has expired from the widest
	// window — instants strictly after lateSteady.
	lateCompared := 0
	filter := func(bag map[string]string) map[string]string {
		f := make(map[string]string, len(bag))
		for k, v := range bag {
			if strings.HasPrefix(k, "late") {
				at, err := time.Parse(time.RFC3339, k[strings.IndexByte(k, '@')+1:])
				if err != nil {
					log.Fatal(err)
				}
				if !at.After(lateSteady) {
					continue
				}
				lateCompared++
			}
			f[k] = v
		}
		return f
	}
	want := filter(bags[0])
	if lateCompared == 0 {
		log.Fatal("B18: no late-query steady-state instants compared; raise measure")
	}
	for i := 1; i < len(legs); i++ {
		got := filter(bags[i])
		if len(got) != len(want) {
			log.Fatalf("B18 %s: %d result instants vs %d unshared", legs[i].name, len(got), len(want))
		}
		for key, w := range want {
			g, ok := got[key]
			if !ok {
				log.Fatalf("B18 %s: missing result %s", legs[i].name, key)
			}
			if g != w {
				log.Fatalf("B18 %s: result bag diverges from unshared at %s", legs[i].name, key)
			}
		}
	}
	fmt.Printf("oracle: %d (query, instant) bags identical across all modes (%d late steady-state); seraph_delta_fallback_total=0 in all modes\n",
		len(want), lateCompared/len(legs))
	if jsonOut != "" {
		doc := map[string]any{
			"experiment":  "B18",
			"description": "MQO sharing hierarchy vs equality-only sharing: width super-groups, subpattern seeding, late-join merge; per-query result bags verified identical, delta fallbacks zero",
			"command":     "go run ./cmd/seraph-bench -exp B18 -json " + jsonOut,
			"rows":        out,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// b18Stream builds one batch per slide. Each batch holds, per family
// p, perType chains User-[:T<p>]->Svc-[:G<p>]->Ext-[:H<p>]->Org where
// the Svc endpoint is drawn from a fixed pool of svcPool nodes per
// family — the in- and out-edges of a pool node combine across chains
// (and across batches inside the window), so 2-hop candidate pairs
// grow quadratically with window width. r.v cycles over 1..11 and s.v
// over 10..20 (mod-11 cycles, coprime with the 6-id chain stride, so
// both ranges are hit uniformly), making the core conjunct r.v > s.v
// pass ~0.8% of candidate pairs.
func b18Stream(rounds, extra, perType, nFam int, slide time.Duration) []stream.Element {
	const svcPool = 6
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var elems []stream.Element
	id := int64(1000) // fresh ids; pool Svc ids live below 1000
	for b := 0; b < rounds+extra; b++ {
		g := pg.New()
		for p := 0; p < nFam; p++ {
			for i := 0; i < perType; i++ {
				did := int64(p*svcPool + (i+b)%svcPool) // pool node, stable id
				uid, wid, zid, rid, sid, xid := id, id+1, id+2, id+3, id+4, id+5
				id += 6
				g.AddNode(&value.Node{ID: uid, Labels: []string{"User"}, Props: map[string]value.Value{
					"uid": value.NewInt(uid)}})
				g.AddNode(&value.Node{ID: did, Labels: []string{"Svc"}, Props: map[string]value.Value{
					"did": value.NewInt(did)}})
				g.AddNode(&value.Node{ID: wid, Labels: []string{"Ext"}, Props: map[string]value.Value{
					"wid": value.NewInt(wid)}})
				g.AddNode(&value.Node{ID: zid, Labels: []string{"Org"}, Props: map[string]value.Value{
					"zid": value.NewInt(zid)}})
				if err := g.AddRel(&value.Relationship{ID: rid, StartID: uid, EndID: did,
					Type:  fmt.Sprintf("T%d", p),
					Props: map[string]value.Value{"v": value.NewInt(1 + rid%11)}}); err != nil {
					log.Fatal(err)
				}
				if err := g.AddRel(&value.Relationship{ID: sid, StartID: did, EndID: wid,
					Type:  fmt.Sprintf("G%d", p),
					Props: map[string]value.Value{"v": value.NewInt(10 + sid%11)}}); err != nil {
					log.Fatal(err)
				}
				if err := g.AddRel(&value.Relationship{ID: xid, StartID: wid, EndID: zid,
					Type:  fmt.Sprintf("H%d", p),
					Props: map[string]value.Value{"v": value.NewInt(1 + xid%10)}}); err != nil {
					log.Fatal(err)
				}
			}
		}
		elems = append(elems, stream.Element{Graph: g, Time: start.Add(time.Duration(b) * slide)})
	}
	return elems
}
