// Command seraph-server runs the Seraph Graph Stream Processing engine
// as an HTTP service (the implementation plan of the paper's Section
// 6).
//
//	seraph-server -addr :7687
//
//	# register the running-example query
//	curl -X POST localhost:7687/queries --data-binary @trick.seraph
//
//	# ingest events
//	seraph gen -workload figure1 | curl -X POST localhost:7687/events --data-binary @-
//
//	# fetch results
//	curl localhost:7687/queries/student_trick/results
//
//	# observe: Prometheus metrics, per-query latency, profiling
//	curl localhost:7687/metrics
//	curl localhost:7687/queries/student_trick
//	seraph-server -pprof &  # then: go tool pprof localhost:7687/debug/pprof/profile
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests (including streaming /events batches) drain for up to
// -shutdown-timeout before the listener is torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seraph/internal/engine"
	"seraph/internal/queue"
	"seraph/internal/server"
	"seraph/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	restore := flag.String("restore", "", "resume from a checkpoint file (see GET /checkpoint)")
	parallelism := flag.Int("parallelism", 0, "max queries evaluated concurrently (0 = GOMAXPROCS)")
	historyRetention := flag.Int("history-retention", 0, "materialized result tables kept per query (0 = unlimited)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound on due-but-unexecuted evaluation instants; pushes beyond it get 429 (0 = unlimited)")
	evalDeadline := flag.Duration("eval-deadline", 0, "shed stale evaluation instants once a query's catch-up exceeds this wall-clock budget (0 = never shed)")
	ingestQueue := flag.Int("ingest-queue", 0, "buffer POST /events in a bounded in-process queue of this capacity, drained asynchronously (0 = synchronous ingest)")
	fullPolicy := flag.String("full-policy", "reject", "full-queue policy for -ingest-queue: block, reject, or drop-oldest")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
	deltaEval := flag.Bool("delta-eval", false, "maintain query results from window deltas instead of re-evaluating the full window (unsupported queries fall back per query; see seraph_delta_fallback_total)")
	deltaBypassRatio := flag.Float64("delta-bypass-ratio", 0.3, "churn fraction of the window above which a delta-eval round runs one full evaluation instead (see seraph_delta_bypass_total; <= 0 disables the guard)")
	mqo := flag.Bool("mqo", false, "multi-query optimization: evaluate queries with equal canonical pattern/window fingerprints as one shared group (see seraph_mqo_groups and GET /queries)")
	dataDir := flag.String("data-dir", "", "durable mode: log events and checkpoint engine state under this directory; on boot, recover from it instead of starting empty")
	fsync := flag.String("fsync", "always", "durable-mode WAL sync policy: always (no loss), interval, or never")
	checkpointEvery := flag.Int("checkpoint-every", 256, "durable mode: checkpoint the engine after this many delivered events")
	flag.Parse()

	log := newLogger(*logFormat, *logLevel)
	slog.SetDefault(log)

	opts := []engine.Option{
		engine.WithParallelism(*parallelism),
		engine.WithHistoryRetention(*historyRetention),
		engine.WithMaxInFlight(*maxInFlight),
		engine.WithEvalDeadline(*evalDeadline),
	}
	// Only append the option when the flag is set: restore-path options
	// are applied on top of the checkpoint-derived ones, and a bare
	// `-restore` run must keep the checkpointed delta-eval setting.
	if *deltaEval {
		opts = append(opts, engine.WithDeltaEval(true))
	}
	if *deltaBypassRatio != 0.3 {
		opts = append(opts, engine.WithDeltaBypassRatio(*deltaBypassRatio))
	}
	if *mqo {
		opts = append(opts, engine.WithSharedEval(true))
	}
	var srv *server.Server
	if *dataDir != "" {
		if *restore != "" {
			fatal(log, "flags", errors.New("-data-dir and -restore are mutually exclusive: durable mode recovers from its own checkpoints"))
		}
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			fatal(log, "parse -fsync", err)
		}
		qpolicy, err := queue.ParseFullPolicy(*fullPolicy)
		if err != nil {
			fatal(log, "parse -full-policy", err)
		}
		srv, err = server.OpenDurable(server.DurableConfig{
			Dir:             *dataDir,
			Fsync:           policy,
			CheckpointEvery: *checkpointEvery,
			QueueCapacity:   *ingestQueue,
			QueuePolicy:     qpolicy,
		}, opts...)
		if err != nil {
			fatal(log, "open data directory", err)
		}
		defer srv.Close()
		log.Info("durable mode enabled",
			"dir", *dataDir, "fsync", policy.String(), "checkpoint_every", *checkpointEvery)
	} else if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(log, "open checkpoint", err)
		}
		srv, err = server.Restore(f, opts...)
		f.Close()
		if err != nil {
			fatal(log, "restore checkpoint", err)
		}
		log.Info("restored from checkpoint",
			"path", *restore, "queries", len(srv.Engine().Queries()))
	} else {
		srv = server.New(opts...)
	}
	srv.SetLogger(log)
	srv.SetRetryAfter(*retryAfter)
	// Durable mode already queues ingestion (capacity/policy flow through
	// DurableConfig), so only enable the in-memory queue otherwise.
	if *ingestQueue > 0 && *dataDir == "" {
		policy, err := queue.ParseFullPolicy(*fullPolicy)
		if err != nil {
			fatal(log, "parse -full-policy", err)
		}
		if err := srv.EnableIngestQueue(*ingestQueue, policy); err != nil {
			fatal(log, "enable ingest queue", err)
		}
		defer srv.Close()
		log.Info("asynchronous ingest enabled",
			"capacity", *ingestQueue, "policy", policy.String())
	}
	if *pprofFlag {
		srv.EnablePprof()
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	httpSrv := srv.HTTPServer(*addr)

	// Serve until a termination signal, then drain in-flight requests:
	// killing the listener mid-/events would lose the tail of a batch
	// the client believes it delivered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Info("seraph-server listening", "addr", *addr, "parallelism", *parallelism)
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(log, "serve", err)
		}
	case <-ctx.Done():
		stop()
		log.Info("shutting down", "grace", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Error("shutdown incomplete, closing", "err", err)
			_ = httpSrv.Close()
			os.Exit(1)
		}
		log.Info("shutdown complete")
	}
}

func newLogger(format, level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h)
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
