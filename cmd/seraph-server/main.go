// Command seraph-server runs the Seraph Graph Stream Processing engine
// as an HTTP service (the implementation plan of the paper's Section
// 6).
//
//	seraph-server -addr :7687
//
//	# register the running-example query
//	curl -X POST localhost:7687/queries --data-binary @trick.seraph
//
//	# ingest events
//	seraph gen -workload figure1 | curl -X POST localhost:7687/events --data-binary @-
//
//	# fetch results
//	curl localhost:7687/queries/student_trick/results
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"seraph/internal/engine"
	"seraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	restore := flag.String("restore", "", "resume from a checkpoint file (see GET /checkpoint)")
	parallelism := flag.Int("parallelism", 0, "max queries evaluated concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	var srv *server.Server
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = server.Restore(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("seraph-server restored %d queries from %s", len(srv.Engine().Queries()), *restore)
	} else {
		srv = server.New(engine.WithParallelism(*parallelism))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("seraph-server listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
