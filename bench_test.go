package seraph

// Benchmarks mirroring the experiment suite of DESIGN.md (B1–B9) as
// testing.B micro-benchmarks, plus a benchmark of the paper's running
// example itself. The cmd/seraph-bench harness prints the same
// experiments as parameter-sweep tables; these benchmarks provide
// ns/op and allocation profiles via `go test -bench=. -benchmem`.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"seraph/internal/baseline"
	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/graphstore"
	"seraph/internal/parser"
	"seraph/internal/stream"
	"seraph/internal/value"
	"seraph/internal/workload"
)

// mmStream builds a deterministic micro-mobility stream sized to keep
// station degree (and hence variable-length fan-out) moderate.
func mmStream(batches, perBatch int) []stream.Element {
	cfg := workload.DefaultMicroMobilityConfig()
	cfg.RentalsPerBatch = perBatch
	cfg.Stations = 10 + perBatch*3
	cfg.Vehicles = perBatch * 20
	cfg.Users = perBatch * 10
	return workload.NewMicroMobility(cfg).Batches(batches)
}

// replay pushes elems through an engine registered with src.
func replay(b *testing.B, src string, elems []stream.Element) int {
	b.Helper()
	e := engine.New()
	rows := 0
	if _, err := e.RegisterSource(src, func(r engine.Result) { rows += r.Table.Len() }); err != nil {
		b.Fatal(err)
	}
	for _, el := range elems {
		if err := e.Push(el.Graph, el.Time); err != nil {
			b.Fatal(err)
		}
		if err := e.AdvanceTo(el.Time); err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

func trickSrc(start time.Time, op string, width, slide time.Duration) string {
	return fmt.Sprintf(`
REGISTER QUERY trick STARTING AT %s
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station),
        q = (b)-[:returnedAt|rentedAt*3..4]-(o:Station)
  WITHIN %s
  WITH r, s, q, relationships(q) AS rels,
       [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
  WHERE all(e IN rels WHERE
        e.user_id = r.user_id AND e.val_time > r.val_time AND
        (e.duration IS NULL OR e.duration < 20))
  EMIT r.user_id, s.id, r.val_time, hops
  %s EVERY %s
}`, start.Format("2006-01-02T15:04:05"), value.FormatDuration(width), op, value.FormatDuration(slide))
}

// BenchmarkPaperRunningExample replays the exact Figure 1 stream
// through the Listing 5 query (Tables 5/6 reproduction).
func BenchmarkPaperRunningExample(b *testing.B) {
	elems := workload.Figure1Stream()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := replay(b, workload.StudentTrickQuery, elems)
		if rows != 2 {
			b.Fatalf("rows = %d, want 2", rows)
		}
	}
}

// BenchmarkThroughputRate (B1): end-to-end engine cost at increasing
// event rates.
func BenchmarkThroughputRate(b *testing.B) {
	for _, perBatch := range []int{5, 20, 80} {
		elems := mmStream(24, perBatch)
		edges := 0
		for _, e := range elems {
			edges += e.Graph.NumRels()
		}
		src := trickSrc(elems[0].Time, "ON ENTERING", time.Hour, 5*time.Minute)
		b.Run(fmt.Sprintf("rentalsPerBatch=%d", perBatch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
			b.ReportMetric(float64(edges*b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkWindowSize (B2): evaluation cost vs WITHIN width.
func BenchmarkWindowSize(b *testing.B) {
	elems := mmStream(24, 20)
	for _, width := range []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour} {
		src := trickSrc(elems[0].Time, "ON ENTERING", width, 5*time.Minute)
		b.Run(value.FormatDuration(width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
		})
	}
}

// BenchmarkSlide (B3): evaluation cost vs EVERY slide (evaluation
// frequency).
func BenchmarkSlide(b *testing.B) {
	elems := mmStream(24, 20)
	for _, slide := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		src := trickSrc(elems[0].Time, "ON ENTERING", time.Hour, slide)
		b.Run(value.FormatDuration(slide), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
		})
	}
}

// BenchmarkEmission (B4): SNAPSHOT vs ON ENTERING vs ON EXITING.
func BenchmarkEmission(b *testing.B) {
	elems := mmStream(24, 20)
	for _, op := range []string{"SNAPSHOT", "ON ENTERING", "ON EXITING"} {
		src := trickSrc(elems[0].Time, op, time.Hour, 5*time.Minute)
		b.Run(op, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
		})
	}
}

// BenchmarkBaselineVsSeraph (B5): the Section 3.3 comparison. The
// Seraph engine's per-evaluation cost is bounded by window content; the
// Cypher-only poller scans the ever-growing merged history.
func BenchmarkBaselineVsSeraph(b *testing.B) {
	for _, history := range []int{24, 96, 288} { // 2h, 8h, 24h of batches
		elems := mmStream(history, 20)
		b.Run(fmt.Sprintf("seraph/history=%d", history), func(b *testing.B) {
			src := fmt.Sprintf(`
REGISTER QUERY rentals STARTING AT %s
{
  MATCH (bk:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT1H
  EMIT r.user_id AS user, count(*) AS rentals
  SNAPSHOT EVERY PT5M
}`, elems[0].Time.Format("2006-01-02T15:04:05"))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
		})
		b.Run(fmt.Sprintf("baseline/history=%d", history), func(b *testing.B) {
			q := `
WITH datetime() - duration('PT1H') AS win_start, datetime() AS win_end
MATCH (bk:Bike)-[r:rentedAt]->(s:Station)
WHERE win_start <= r.val_time <= win_end
RETURN r.user_id AS user, count(*) AS rentals`
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := baseline.New(q, elems[0].Time, 5*time.Minute, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, el := range elems {
					if err := p.Ingest(el.Graph, el.Time); err != nil {
						b.Fatal(err)
					}
					if err := p.AdvanceTo(el.Time); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkVarLength (B6): variable-length matching cost vs hop bound
// over one window's worth of data.
func BenchmarkVarLength(b *testing.B) {
	elems := mmStream(12, 20)
	g, err := stream.Snapshot(elems)
	if err != nil {
		b.Fatal(err)
	}
	store := graphstore.FromGraph(g)
	for _, maxHops := range []int{1, 3, 5} {
		q, err := parser.ParseQuery(fmt.Sprintf(
			`MATCH q = (bk:Bike)-[:returnedAt|rentedAt*1..%d]-(o:Station) RETURN count(*) AS n`, maxHops))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("maxHops=%d", maxHops), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalQuery(&eval.Ctx{Store: store}, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshot (B7): snapshot graph construction (union under
// UNA) vs substream size.
func BenchmarkSnapshot(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		elems := workload.NewMicroMobility(workload.DefaultMicroMobilityConfig()).Batches(n)
		b.Run(fmt.Sprintf("elements=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stream.Snapshot(elems); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShortestPath (B8): the network-monitoring query over
// growing topologies.
func BenchmarkShortestPath(b *testing.B) {
	for _, racks := range []int{10, 50, 100} {
		cfg := workload.DefaultNetworkConfig()
		cfg.Racks = racks
		elems := workload.NewNetwork(cfg).Batches(2)
		src := workload.NetworkAnomalyQuery(cfg.Start)
		b.Run(fmt.Sprintf("racks=%d", racks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, src, elems)
			}
		})
	}
}

// BenchmarkConcurrentQueries (B9): cost of hosting many registered
// queries on one engine.
func BenchmarkConcurrentQueries(b *testing.B) {
	elems := mmStream(12, 20)
	for _, nq := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("queries=%d", nq), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := engine.New()
				for j := 0; j < nq; j++ {
					src := fmt.Sprintf(`
REGISTER QUERY q%d STARTING AT %s
{
  MATCH (bk:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT30M
  WHERE r.user_id %% %d = %d
  EMIT r.user_id, s.id
  ON ENTERING EVERY PT5M
}`, j, elems[0].Time.Format("2006-01-02T15:04:05"), nq, j)
					if _, err := e.RegisterSource(src, nil); err != nil {
						b.Fatal(err)
					}
				}
				for _, el := range elems {
					if err := e.Push(el.Graph, el.Time); err != nil {
						b.Fatal(err)
					}
					if err := e.AdvanceTo(el.Time); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAdvanceParallelQueries (B12): the parallel multi-query
// evaluation scheduler. Each registered query filters a disjoint user
// slice of the same micro-mobility stream; with parallelism 1 the
// engine evaluates them sequentially in global timestamp order, with
// parallelism GOMAXPROCS distinct queries evaluate concurrently.
// Per-sink result sequences are byte-identical at every setting (see
// TestParallelismDeterminism); on multi-core hardware throughput at 16
// queries should be ≥ 2× the sequential run.
func BenchmarkAdvanceParallelQueries(b *testing.B) {
	elems := mmStream(12, 20)
	pars := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		pars = append(pars, g)
	}
	// SERAPH_METRICS=off disables instrumentation so CI can smoke-check
	// the metrics overhead (run once with, once without).
	opts := []engine.Option{}
	if os.Getenv("SERAPH_METRICS") == "off" {
		opts = append(opts, engine.WithMetrics(nil))
	}
	for _, nq := range []int{1, 4, 16, 64} {
		for _, par := range pars {
			b.Run(fmt.Sprintf("queries=%d/parallelism=%d", nq, par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := engine.New(append([]engine.Option{engine.WithParallelism(par)}, opts...)...)
					for j := 0; j < nq; j++ {
						src := fmt.Sprintf(`
REGISTER QUERY q%d STARTING AT %s
{
  MATCH (bk:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT30M
  WHERE r.user_id %% %d = %d
  EMIT r.user_id, s.id
  ON ENTERING EVERY PT5M
}`, j, elems[0].Time.Format("2006-01-02T15:04:05"), nq, j)
						if _, err := e.RegisterSource(src, nil); err != nil {
							b.Fatal(err)
						}
					}
					for _, el := range elems {
						if err := e.Push(el.Graph, el.Time); err != nil {
							b.Fatal(err)
						}
						if err := e.AdvanceTo(el.Time); err != nil {
							b.Fatal(err)
						}
					}
				}
				// One evaluation per query per 5-minute batch.
				b.ReportMetric(float64(nq*len(elems)*b.N)/b.Elapsed().Seconds(), "evals/s")
			})
		}
	}
}

// BenchmarkSnapshotCacheAblation (B10): the Section 6 re-execution
// avoidance optimization, on a sparse stream where most windows repeat.
func BenchmarkSnapshotCacheAblation(b *testing.B) {
	// One event per hour, evaluated every 5 minutes: 11 of 12 windows
	// have unchanged content.
	cfg := workload.DefaultMicroMobilityConfig()
	cfg.BatchEvery = time.Hour
	elems := workload.NewMicroMobility(cfg).Batches(12)
	src := trickSrc(elems[0].Time, "ON ENTERING", time.Hour, 5*time.Minute)
	for _, cache := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cache), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.WithSnapshotCache(cache))
				if _, err := e.RegisterSource(src, nil); err != nil {
					b.Fatal(err)
				}
				for _, el := range elems {
					if err := e.Push(el.Graph, el.Time); err != nil {
						b.Fatal(err)
					}
					if err := e.AdvanceTo(el.Time); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkOneTimeQueries: the embedded GraphDB's one-time query path
// (parse + plan + evaluate).
func BenchmarkOneTimeQueries(b *testing.B) {
	elems := mmStream(12, 20)
	g, err := stream.Snapshot(elems)
	if err != nil {
		b.Fatal(err)
	}
	store := graphstore.FromGraph(g)
	queries := map[string]string{
		"node-scan":   `MATCH (s:Station) RETURN count(*) AS n`,
		"expand":      `MATCH (bk:Bike)-[r:rentedAt]->(s:Station) RETURN count(*) AS n`,
		"aggregation": `MATCH (bk:Bike)-[r:rentedAt]->(s:Station) RETURN s.id AS sid, count(*) AS n, avg(r.user_id) AS au`,
		"order-limit": `MATCH (bk:Bike)-[r]->(s:Station) RETURN bk.id AS b ORDER BY b LIMIT 10`,
	}
	for name, src := range queries {
		q, err := parser.ParseQuery(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalQuery(&eval.Ctx{Store: store}, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParser: query text → AST.
func BenchmarkParser(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseRegistration(workload.StudentTrickQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalSnapshots (B11): rebuild-per-evaluation vs
// refcounted rolling maintenance, on a heavily overlapping window
// (1h WITHIN, 1m EVERY → ~98% overlap between consecutive windows).
func BenchmarkIncrementalSnapshots(b *testing.B) {
	elems := mmStream(24, 20)
	src := fmt.Sprintf(`
REGISTER QUERY rentals STARTING AT %s
{
  MATCH (bk:Bike)-[r:rentedAt]->(s:Station)
  WITHIN PT1H
  EMIT r.user_id AS user, count(*) AS rentals
  SNAPSHOT EVERY PT1M
}`, elems[0].Time.Format("2006-01-02T15:04:05"))
	for _, incremental := range []bool{false, true} {
		b.Run(fmt.Sprintf("incremental=%v", incremental), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.WithIncrementalSnapshots(incremental))
				if _, err := e.RegisterSource(src, nil); err != nil {
					b.Fatal(err)
				}
				for _, el := range elems {
					if err := e.Push(el.Graph, el.Time); err != nil {
						b.Fatal(err)
					}
					if err := e.AdvanceTo(el.Time); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
