package seraph

// Delta-driven evaluation benchmarks (PR 5): per-instant evaluation
// cost under controlled window churn, full re-evaluation vs the
// maintained delta path (engine.WithDeltaEval), plus the BagDifference
// allocation fix the classic diff operators ride on. `make bench-delta`
// runs this file alone; the seraph-bench twin is
// `go run ./cmd/seraph-bench -exp B14` (see BENCH_pr5.json).

import (
	"fmt"
	"testing"
	"time"

	"seraph/internal/engine"
	"seraph/internal/eval"
	"seraph/internal/pg"
	"seraph/internal/stream"
	"seraph/internal/value"
)

// diffTables builds two bags of rows (3 columns) drawn from `distinct`
// row shapes, overlapping heavily — the shape BagDifference sees every
// instant from an ON ENTERING / ON EXITING query.
func diffTables(rows, distinct int) (*eval.Table, *eval.Table) {
	mk := func(offset int) *eval.Table {
		t := &eval.Table{Cols: []string{"a", "b", "c"}}
		for i := 0; i < rows; i++ {
			k := int64((i + offset) % distinct)
			t.Rows = append(t.Rows, []value.Value{
				value.NewInt(k),
				value.NewString(fmt.Sprintf("name-%d", k)),
				value.NewFloat(float64(k) / 3),
			})
		}
		return t
	}
	return mk(0), mk(distinct / 50)
}

// BenchmarkBagDifference: the diff operators call this at every
// instant on full result tables, so its per-row cost and allocation
// behaviour bound ON ENTERING / ON EXITING latency in classic mode.
// The row-key buffer is reused across rows; allocations stay
// proportional to the number of distinct u-side keys, not to
// rows × columns (see TestBagDifferenceAllocs).
func BenchmarkBagDifference(b *testing.B) {
	for _, rows := range []int{1_000, 10_000} {
		t, u := diffTables(rows, rows/10)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.BagDifference(t, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBagDifferenceAllocs pins the allocation behaviour: hashing every
// row through a shared append buffer means the only per-row
// allocations left are first insertions of distinct u-side keys. A
// regression to per-row string keys would cost ≥ 2·rows allocations
// (8192 here) and trip the bound.
func TestBagDifferenceAllocs(t *testing.T) {
	a, u := diffTables(4096, 32)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eval.BagDifference(a, u); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 512 {
		t.Fatalf("BagDifference allocated %.0f times for 4096 rows / 32 distinct keys; want O(distinct)", allocs)
	}
}

// churnStream builds the B14-style workload: a window holding
// `windowEdges` unique (User)-[:SESS]->(Svc) edges in `rounds` batches,
// one batch per slide, so at every instant 1/rounds of the window
// enters and exits — a controlled delta ratio with zero entity overlap.
func churnStream(rounds, perBatch, extra int, slide time.Duration) []stream.Element {
	start := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	var elems []stream.Element
	id := int64(1)
	for b := 0; b < rounds+extra; b++ {
		g := pg.New()
		for i := 0; i < perBatch; i++ {
			uid, did, rid := id, id+1, id+2
			id += 3
			g.AddNode(&value.Node{ID: uid, Labels: []string{"User"}, Props: map[string]value.Value{
				"uid": value.NewInt(uid)}})
			g.AddNode(&value.Node{ID: did, Labels: []string{"Svc"}, Props: map[string]value.Value{
				"did": value.NewInt(did)}})
			if err := g.AddRel(&value.Relationship{ID: rid, StartID: uid, EndID: did, Type: "SESS",
				Props: map[string]value.Value{"v": value.NewInt(1 + uid%5)}}); err != nil {
				panic(err)
			}
		}
		elems = append(elems, stream.Element{Graph: g, Time: start.Add(time.Duration(b) * slide)})
	}
	return elems
}

// BenchmarkEngineDeltaEval: one evaluation instant at a 1% delta ratio
// on a 5000-edge window, full re-evaluation vs the delta path. The
// measured loop replays the churn batches due after the window is
// full; b.N scales the number of instants.
func BenchmarkEngineDeltaEval(b *testing.B) {
	const rounds, perBatch = 100, 50 // 5000-edge window, 1% churn/instant
	slide := 5 * time.Second
	for _, mode := range []struct {
		name string
		opts []engine.Option
	}{
		{"full", nil},
		{"delta", []engine.Option{engine.WithDeltaEval(true)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			elems := churnStream(rounds, perBatch, b.N+1, slide)
			width := time.Duration(rounds) * slide
			startAt := elems[rounds-1].Time
			src := fmt.Sprintf(`
REGISTER QUERY churn STARTING AT %s
{
  MATCH (u:User)-[r:SESS]->(d:Svc)
  WITHIN %s
  WHERE r.v > 0
  EMIT u.uid AS uid, d.did AS did
  ON ENTERING EVERY %s
}`, startAt.Format("2006-01-02T15:04:05"), value.FormatDuration(width), value.FormatDuration(slide))
			e := engine.New(mode.opts...)
			if _, err := e.RegisterSource(src, nil); err != nil {
				b.Fatal(err)
			}
			// Fill the window, then absorb the first (full Δ⁺) instant.
			for _, el := range elems[:rounds] {
				if err := e.Push(el.Graph, el.Time); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.AdvanceTo(elems[rounds].Time); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for _, el := range elems[rounds+1:] {
				if err := e.Push(el.Graph, el.Time); err != nil {
					b.Fatal(err)
				}
				if err := e.AdvanceTo(el.Time); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
