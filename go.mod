module seraph

go 1.22
