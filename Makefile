# Seraph — build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test race bench bench-index bench-delta bench-hotpath bench-mqo bench-mqo2 bench-recovery chaos-recovery repro verify examples fuzz fuzz-wal clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (writes nothing; see bench-record).
bench:
	$(GO) test -bench=. -benchmem ./...

# Indexed-vs-scan MATCH ablation (bench_index_test.go). The seraph-bench
# twin is `go run ./cmd/seraph-bench -exp B13` (see BENCH_pr3.json).
bench-index:
	$(GO) test -run '^$$' -bench 'SelectivePredicate|TypedExpansion|EngineSelectivity' -benchmem .

# Delta-driven vs full evaluation ablation (bench_delta_test.go). The
# seraph-bench twin is `go run ./cmd/seraph-bench -exp B14` (see
# BENCH_pr5.json).
bench-delta:
	$(GO) test -run '^$$' -bench 'BagDifference|EngineDeltaEval' -benchmem .

# Columnar hot-path smoke: the B14 delta-ratio sweep at reduced size,
# aborting on any full/delta row divergence and whenever the 1%-churn
# delta allocs/instant regress more than 2x relative to the committed
# snapshot (BENCH_pr7.json).
bench-hotpath:
	$(GO) run ./cmd/seraph-bench -exp B14 -quick -alloc-guard BENCH_pr7.json

# Multi-query optimization smoke: the B16 shared-vs-unshared comparison
# at reduced size, aborting on any per-query result-bag divergence
# between the unshared, shared, and shared+delta engines. The committed
# full-size run is BENCH_pr8.json.
bench-mqo:
	$(GO) run ./cmd/seraph-bench -exp B16 -quick

# Sharing-hierarchy smoke: B18 overlaps query families across window
# widths, subpattern parents, and a late registrant, aborting on any
# per-(query, instant) result-bag divergence between the unshared,
# equality-shared, and hierarchical engines. The committed full-size
# run is BENCH_pr10.json.
bench-mqo2:
	$(GO) run ./cmd/seraph-bench -exp B18 -quick

# Crash-recovery smoke: B17 builds durable directories under three
# checkpoint cadences and times a cold restart of each, aborting if the
# recovered run skips or double-replays any log record. The committed
# full-size run is BENCH_pr9.json.
bench-recovery:
	$(GO) run ./cmd/seraph-bench -exp B17 -quick

# Crash-recovery chaos matrix: seeded kill points against the durable
# WAL + checkpoint stack (see internal/chaos/recovery.go).
chaos-recovery:
	$(GO) test -race -run 'TestRecovery' -v ./internal/chaos/

# Record deliverable outputs.
record:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate the paper's tables and figures.
repro:
	$(GO) run ./cmd/seraph-repro

# Assert the paper reproduction (CI).
verify:
	$(GO) run ./cmd/seraph-repro -verify

# Parameter-sweep experiment harness (several minutes).
experiments:
	$(GO) run ./cmd/seraph-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/micromobility
	$(GO) run ./examples/netmon
	$(GO) run ./examples/crime
	$(GO) run ./examples/referencedata

fuzz:
	$(GO) test ./internal/parser -fuzz FuzzParseQuery -fuzztime 30s

fuzz-wal:
	$(GO) test ./internal/wal -fuzz FuzzWALReplay -fuzztime 30s

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf bin
