package seraph

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

func sensorEvent(t *testing.T, relID int64, reading float64, at time.Time) *Graph {
	t.Helper()
	g := NewGraph()
	if err := g.AddNode(1, []string{"Sensor"}, map[string]any{"name": "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(2, []string{"Zone"}, map[string]any{"name": "hall"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRelationship(relID, 1, 2, "READ", map[string]any{"v": reading, "at": at}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEngineEndToEnd(t *testing.T) {
	e := NewEngine()
	var results []Result
	q, err := e.Register(`
REGISTER QUERY hot STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor)-[r:READ]->(z:Zone)
  WITHIN PT10S
  WHERE r.v > 40.0
  EMIT s.name AS sensor, r.v AS v
  ON ENTERING EVERY PT5S
}`, func(r Result) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "hot" {
		t.Errorf("name = %s", q.Name())
	}

	for i, v := range []float64{10, 55, 20} {
		ts := t0.Add(time.Duration(i*5) * time.Second)
		if err := e.PushAndAdvance(sensorEvent(t, int64(100+i), v, ts), ts); err != nil {
			t.Fatal(err)
		}
	}

	if len(results) != 3 {
		t.Fatalf("evaluations = %d", len(results))
	}
	hot := results[1]
	if hot.Op != OnEntering {
		t.Errorf("op = %s", hot.Op)
	}
	if hot.Table.Len() != 1 {
		t.Fatalf("hot rows = %d", hot.Table.Len())
	}
	if got := hot.Table.Get(0, "sensor"); got != "s1" {
		t.Errorf("sensor = %v", got)
	}
	if got := hot.Table.Get(0, "v"); got != 55.0 {
		t.Errorf("v = %v (%T)", got, got)
	}
	// win_start / win_end surface as time.Time.
	if ws, ok := hot.Table.Get(0, "win_start").(time.Time); !ok || !ws.Equal(hot.WinStart) {
		t.Errorf("win_start = %v", hot.Table.Get(0, "win_start"))
	}
	st := q.Stats()
	if st.Evaluations != 3 || st.ElementsSeen != 3 || st.RowsEmitted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := e.Deregister("hot"); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeChannel(t *testing.T) {
	e := NewEngine()
	_, ch, err := e.Subscribe(`
REGISTER QUERY sub STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT10S
  EMIT s.name AS n
  SNAPSHOT EVERY PT5S
}`, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PushAndAdvance(sensorEvent(t, 1, 1, t0), t0); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.Table.Len() != 1 {
			t.Errorf("rows = %d", r.Table.Len())
		}
	default:
		t.Fatal("no result on channel")
	}
}

func TestGraphDBExec(t *testing.T) {
	db := NewGraphDB()
	if _, err := db.Exec(`CREATE (:City {name: 'Leipzig', pop: 600000})-[:IN]->(:Country {name: 'DE'})`, nil); err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 2 || db.NumRelationships() != 1 {
		t.Errorf("sizes %d/%d", db.NumNodes(), db.NumRelationships())
	}
	out, err := db.Exec(`MATCH (c:City)-[:IN]->(x) RETURN c.name AS city, x.name AS country`, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Maps()[0]
	if m["city"] != "Leipzig" || m["country"] != "DE" {
		t.Errorf("row = %v", m)
	}
	// Parameters.
	out, err = db.Exec(`MATCH (c:City) WHERE c.pop > $min RETURN count(*) AS n`,
		map[string]any{"min": 100000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Get(0, "n") != int64(1) {
		t.Errorf("param query: %v", out.Get(0, "n"))
	}
	// Parse errors surface.
	if _, err := db.Exec("MATCH OOPS", nil); err == nil {
		t.Error("parse error expected")
	}
	// Entity conversion.
	out = db.MustExec(`MATCH (c:City) RETURN c`, nil)
	node, ok := out.Get(0, "c").(*Node)
	if !ok || node.Props["name"] != "Leipzig" || node.Labels[0] != "City" {
		t.Errorf("node conversion: %#v", out.Get(0, "c"))
	}
	// Path conversion.
	out = db.MustExec(`MATCH p = (:City)-[:IN]->(:Country) RETURN p`, nil)
	path, ok := out.Get(0, "p").(*Path)
	if !ok || path.Len() != 1 || len(path.Nodes) != 2 {
		t.Errorf("path conversion: %#v", out.Get(0, "p"))
	}
}

func TestGraphDBClock(t *testing.T) {
	db := NewGraphDB()
	fixed := time.Date(2022, 10, 14, 15, 40, 0, 0, time.UTC)
	db.SetClock(fixed)
	out := db.MustExec(`RETURN datetime() AS now`, nil)
	if got, ok := out.Get(0, "now").(time.Time); !ok || !got.Equal(fixed) {
		t.Errorf("datetime() = %v", out.Get(0, "now"))
	}
}

func TestValueConversions(t *testing.T) {
	db := NewGraphDB()
	in := map[string]any{
		"i": 42, "f": 2.5, "s": "x", "b": true,
		"list": []any{1, "two"},
		"map":  map[string]any{"k": 1},
		"t":    t0,
		"d":    90 * time.Minute,
	}
	if _, err := db.Exec(`CREATE (:T {i: $i, f: $f, s: $s, b: $b, list: $list, map: $map, t: $t, d: $d})`, in); err != nil {
		t.Fatal(err)
	}
	out := db.MustExec(`MATCH (n:T) RETURN n.i, n.f, n.s, n.b, n.list, n.map, n.t, n.d`, nil)
	row := out.Maps()[0]
	if row["n.i"] != int64(42) || row["n.f"] != 2.5 || row["n.s"] != "x" || row["n.b"] != true {
		t.Errorf("scalars: %v", row)
	}
	if lst, ok := row["n.list"].([]any); !ok || len(lst) != 2 || lst[0] != int64(1) {
		t.Errorf("list: %#v", row["n.list"])
	}
	if m, ok := row["n.map"].(map[string]any); !ok || m["k"] != int64(1) {
		t.Errorf("map: %#v", row["n.map"])
	}
	if tm, ok := row["n.t"].(time.Time); !ok || !tm.Equal(t0) {
		t.Errorf("time: %#v", row["n.t"])
	}
	if d, ok := row["n.d"].(time.Duration); !ok || d != 90*time.Minute {
		t.Errorf("duration: %#v", row["n.d"])
	}
	// Unsupported property types error.
	g := NewGraph()
	if err := g.AddNode(1, nil, map[string]any{"bad": struct{}{}}); err == nil {
		t.Error("unsupported type must fail")
	}
}

func TestWindowBoundsOption(t *testing.T) {
	for _, b := range []WindowBounds{BoundsPaperExample, BoundsStrict} {
		e := NewEngine(WithWindowBounds(b))
		var got []Result
		_, err := e.Register(`
REGISTER QUERY w STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT10S
  EMIT s.name AS n
  SNAPSHOT EVERY PT5S
}`, func(r Result) { got = append(got, r) })
		if err != nil {
			t.Fatal(err)
		}
		if err := e.PushAndAdvance(sensorEvent(t, 1, 1, t0), t0); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatal("one evaluation expected")
		}
		switch b {
		case BoundsPaperExample:
			if !got[0].WinStart.Equal(t0.Add(-10*time.Second)) || !got[0].WinEnd.Equal(t0) {
				t.Errorf("paper bounds: %s – %s", got[0].WinStart, got[0].WinEnd)
			}
		case BoundsStrict:
			if !got[0].WinStart.Equal(t0.Add(-5 * time.Second)) {
				t.Errorf("strict bounds: %s", got[0].WinStart)
			}
		}
	}
}

func TestSnapshotCacheOption(t *testing.T) {
	e := NewEngine(WithSnapshotCache(true))
	q, err := e.Register(`
REGISTER QUERY c STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT1M
  EMIT s.name AS n
  SNAPSHOT EVERY PT5S
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PushAndAdvance(sensorEvent(t, 1, 1, t0), t0); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(t0.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if q.Stats().SkippedByCache == 0 {
		t.Error("cache should have skipped re-evaluations")
	}
}

func TestCheckpointRestorePublicAPI(t *testing.T) {
	e := NewEngine()
	if _, err := e.Register(`
REGISTER QUERY cp STARTING AT 2026-07-06T10:00:00
{
  MATCH (s:Sensor) WITHIN PT30S
  EMIT count(*) AS n
  SNAPSHOT EVERY PT10S
}`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.PushAndAdvance(sensorEvent(t, 1, 5, t0), t0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Result
	e2, err := RestoreEngine(strings.NewReader(buf.String()), func(name string) func(Result) {
		return func(r Result) { got = append(got, r) }
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.AdvanceTo(t0.Add(20 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("post-restore evaluations = %d", len(got))
	}
	if got[0].Table.Get(0, "n") != int64(1) {
		t.Errorf("restored history lost: %v", got[0].Table.Rows)
	}
}
